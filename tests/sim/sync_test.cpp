#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace nicbar::sim {
namespace {

using namespace nicbar::sim::literals;

// --- Condition ---------------------------------------------------------------

Task cond_waiter(Condition& c, std::vector<int>& log, int id) {
  co_await c.wait();
  log.push_back(id);
}

TEST(ConditionTest, NotifyAllReleasesAllWaitersInOrder) {
  Simulator sim;
  Condition cond(sim);
  std::vector<int> log;
  for (int i = 0; i < 4; ++i) sim.spawn(cond_waiter(cond, log, i));
  sim.schedule_in(5_us, [&] { cond.notify_all(); });
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now().ps(), (5_us).ps());
}

TEST(ConditionTest, LateWaitersNeedNextNotify) {
  Simulator sim;
  Condition cond(sim);
  std::vector<int> log;
  sim.spawn(cond_waiter(cond, log, 1));
  sim.schedule_in(1_us, [&] { cond.notify_all(); });
  sim.schedule_in(2_us, [&] { sim.spawn(cond_waiter(cond, log, 2)); });
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1}));
  EXPECT_EQ(cond.waiter_count(), 1u);
  cond.notify_all();
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

// --- Gate ----------------------------------------------------------------------

Task gate_waiter(Gate& g, int& passed, Simulator& sim, SimTime& when) {
  co_await g.wait();
  ++passed;
  when = sim.now();
}

TEST(GateTest, WaitersPassWhenOpened) {
  Simulator sim;
  Gate gate(sim);
  int passed = 0;
  SimTime when{};
  sim.spawn(gate_waiter(gate, passed, sim, when));
  sim.schedule_in(3_us, [&] { gate.open(); });
  sim.run();
  EXPECT_EQ(passed, 1);
  EXPECT_EQ(when.ps(), (3_us).ps());
}

TEST(GateTest, OpenGateIsTransparent) {
  Simulator sim;
  Gate gate(sim);
  gate.open();
  int passed = 0;
  SimTime when{};
  sim.spawn(gate_waiter(gate, passed, sim, when));
  sim.run();
  EXPECT_EQ(passed, 1);
  EXPECT_EQ(when.ps(), 0);
}

TEST(GateTest, DoubleOpenHarmless) {
  Simulator sim;
  Gate gate(sim);
  gate.open();
  gate.open();
  EXPECT_TRUE(gate.is_open());
}

TEST(GateTest, ResetClosesAgain) {
  Simulator sim;
  Gate gate(sim);
  gate.open();
  gate.reset();
  EXPECT_FALSE(gate.is_open());
  int passed = 0;
  SimTime when{};
  sim.spawn(gate_waiter(gate, passed, sim, when));
  sim.run();
  EXPECT_EQ(passed, 0);  // still waiting
  gate.open();
  sim.run();
  EXPECT_EQ(passed, 1);
}

// --- Mailbox -------------------------------------------------------------------

Task mb_consumer(Mailbox<int>& mb, std::vector<int>& got, int n) {
  for (int i = 0; i < n; ++i) {
    got.push_back(co_await mb.recv());
  }
}

TEST(MailboxTest, SendBeforeRecv) {
  Simulator sim;
  Mailbox<int> mb(sim);
  mb.send(7);
  mb.send(8);
  std::vector<int> got;
  sim.spawn(mb_consumer(mb, got, 2));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{7, 8}));
}

TEST(MailboxTest, RecvBeforeSendSuspends) {
  Simulator sim;
  Mailbox<int> mb(sim);
  std::vector<int> got;
  sim.spawn(mb_consumer(mb, got, 1));
  sim.run();
  EXPECT_TRUE(got.empty());
  mb.send(42);
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{42}));
}

TEST(MailboxTest, FifoAcrossManyValues) {
  Simulator sim;
  Mailbox<int> mb(sim);
  std::vector<int> got;
  sim.spawn(mb_consumer(mb, got, 100));
  for (int i = 0; i < 100; ++i) {
    sim.schedule_in(microseconds(i), [&, i] { mb.send(i); });
  }
  sim.run();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(MailboxTest, MultipleWaitersServedFifo) {
  Simulator sim;
  Mailbox<int> mb(sim);
  std::vector<std::string> log;
  auto consumer = [](Mailbox<int>& box, std::vector<std::string>& l, std::string name) -> Task {
    const int v = co_await box.recv();
    l.push_back(name + ":" + std::to_string(v));
  };
  sim.spawn(consumer(mb, log, "a"));
  sim.spawn(consumer(mb, log, "b"));
  sim.schedule_in(1_us, [&] {
    mb.send(1);
    mb.send(2);
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a:1", "b:2"}));
}

TEST(MailboxTest, TryRecvNonBlocking) {
  Simulator sim;
  Mailbox<int> mb(sim);
  EXPECT_FALSE(mb.try_recv().has_value());
  mb.send(9);
  auto v = mb.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
  EXPECT_TRUE(mb.empty());
}

TEST(MailboxTest, MoveOnlyValues) {
  Simulator sim;
  Mailbox<std::unique_ptr<int>> mb(sim);
  mb.send(std::make_unique<int>(5));
  std::unique_ptr<int> got;
  sim.spawn([](Mailbox<std::unique_ptr<int>>& box, std::unique_ptr<int>& out) -> Task {
    out = co_await box.recv();
  }(mb, got));
  sim.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, 5);
}

// --- Resource --------------------------------------------------------------------

Task res_user(Simulator& sim, Resource& r, Duration hold, std::vector<int>& log, int id) {
  co_await r.acquire();
  log.push_back(id);
  co_await sim.delay(hold);
  r.release();
}

TEST(ResourceTest, SerializesUnitCapacity) {
  Simulator sim;
  Resource res(sim, 1);
  std::vector<int> log;
  SimTime done{};
  for (int i = 0; i < 3; ++i) sim.spawn(res_user(sim, res, 10_us, log, i));
  sim.spawn([](Simulator& s, Resource& r, SimTime& out) -> Task {
    co_await r.acquire();
    r.release();
    out = s.now();
  }(sim, res, done));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(done.ps(), (30_us).ps());  // after all three 10us holds
}

TEST(ResourceTest, CapacityTwoOverlaps) {
  Simulator sim;
  Resource res(sim, 2);
  std::vector<int> log;
  for (int i = 0; i < 4; ++i) sim.spawn(res_user(sim, res, 10_us, log, i));
  sim.run();
  // Two at t=0, two at t=10; all done by t=20.
  EXPECT_EQ(sim.now().ps(), (20_us).ps());
  EXPECT_EQ(log.size(), 4u);
}

TEST(ResourceTest, NoSlotStealingOnHandOff) {
  Simulator sim;
  Resource res(sim, 1);
  std::vector<int> log;
  // First user holds 10us; second queued; a third arrives exactly when the
  // first releases — FIFO order must hold.
  sim.spawn(res_user(sim, res, 10_us, log, 0));
  sim.schedule_in(1_us, [&] { sim.spawn(res_user(sim, res, 10_us, log, 1)); });
  sim.schedule_in(10_us, [&] { sim.spawn(res_user(sim, res, 10_us, log, 2)); });
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(res.in_use(), 0u);
}

TEST(ResourceTest, UseHelperAcquiresAndReleases) {
  Simulator sim;
  Resource res(sim, 1);
  SimTime t1{}, t2{};
  sim.spawn([](Simulator& s, Resource& r, SimTime& out) -> Task {
    co_await r.use(5_us);
    out = s.now();
  }(sim, res, t1));
  sim.spawn([](Simulator& s, Resource& r, SimTime& out) -> Task {
    co_await r.use(5_us);
    out = s.now();
  }(sim, res, t2));
  sim.run();
  EXPECT_EQ(t1.ps(), (5_us).ps());
  EXPECT_EQ(t2.ps(), (10_us).ps());
}

}  // namespace
}  // namespace nicbar::sim
