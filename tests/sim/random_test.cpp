#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nicbar::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u32());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u32(), first[static_cast<std::size_t>(i)]);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng r(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(10.0, 20.0);
    EXPECT_GE(u, 10.0);
    EXPECT_LT(u, 20.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 15.0, 0.2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng r(5);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t v = r.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, BelowZeroAndOne) {
  Rng r(5);
  EXPECT_EQ(r.below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.25, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / 100000.0, 4.0, 0.1);
}

TEST(RngTest, NextU64CombinesHalves) {
  Rng r(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_u64());
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace nicbar::sim
