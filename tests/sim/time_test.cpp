#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nicbar::sim {
namespace {

using namespace nicbar::sim::literals;

TEST(DurationTest, DefaultIsZero) {
  Duration d;
  EXPECT_EQ(d.ps(), 0);
  EXPECT_TRUE(d.is_zero());
  EXPECT_FALSE(d.is_negative());
}

TEST(DurationTest, UnitConversions) {
  EXPECT_EQ(nanoseconds(1).ps(), 1'000);
  EXPECT_EQ(microseconds(1).ps(), 1'000'000);
  EXPECT_EQ(milliseconds(1).ps(), 1'000'000'000);
  EXPECT_EQ(seconds(1).ps(), 1'000'000'000'000);
  EXPECT_DOUBLE_EQ(microseconds(2.5).us(), 2.5);
  EXPECT_DOUBLE_EQ(nanoseconds(1500).us(), 1.5);
}

TEST(DurationTest, Literals) {
  EXPECT_EQ((5_us).ps(), 5'000'000);
  EXPECT_EQ((2.5_us).ps(), 2'500'000);
  EXPECT_EQ((3_ns).ps(), 3'000);
  EXPECT_EQ((1_ms).ps(), 1'000'000'000);
  EXPECT_EQ((7_ps).ps(), 7);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ((2_us + 3_us).ps(), (5_us).ps());
  EXPECT_EQ((5_us - 3_us).ps(), (2_us).ps());
  EXPECT_EQ((2_us * 3).ps(), (6_us).ps());
  EXPECT_EQ((3 * 2_us).ps(), (6_us).ps());
  EXPECT_EQ((6_us / 3).ps(), (2_us).ps());
  EXPECT_DOUBLE_EQ(6_us / 2_us, 3.0);
  EXPECT_EQ((-(2_us)).ps(), -2'000'000);
  EXPECT_TRUE((1_us - 2_us).is_negative());
}

TEST(DurationTest, CompoundAssignment) {
  Duration d = 1_us;
  d += 2_us;
  EXPECT_EQ(d.ps(), (3_us).ps());
  d -= 1_us;
  EXPECT_EQ(d.ps(), (2_us).ps());
  d *= 4;
  EXPECT_EQ(d.ps(), (8_us).ps());
}

TEST(DurationTest, Comparison) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_GT(2_us, 1_us);
  EXPECT_EQ(1000_ns, 1_us);
  EXPECT_LE(1_us, 1_us);
}

TEST(SimTimeTest, PointArithmetic) {
  SimTime t{0};
  t += 5_us;
  EXPECT_EQ(t.ps(), 5'000'000);
  SimTime u = t + 3_us;
  EXPECT_EQ((u - t).ps(), (3_us).ps());
  EXPECT_EQ((u - 3_us).ps(), t.ps());
  EXPECT_LT(t, u);
}

TEST(SimTimeTest, Extremes) {
  EXPECT_EQ(SimTime::zero().ps(), 0);
  EXPECT_GT(SimTime::max(), SimTime{1'000'000'000'000});
}

TEST(CycleHelpersTest, CycleAtMhz) {
  // 33 MHz LANai 4.3: one cycle is 30303 ps.
  EXPECT_EQ(cycle_at_mhz(33.0).ps(), 30303);
  // 66 MHz LANai 7.2: exactly half.
  EXPECT_EQ(cycle_at_mhz(66.0).ps(), 15151);
  EXPECT_EQ(cycles_at_mhz(100, 50.0).ps(), 2'000'000);  // 100 cycles @50MHz = 2us
}

TEST(CycleHelpersTest, DoubleClockHalvesCost) {
  const Duration slow = cycles_at_mhz(600, 33.0);
  const Duration fast = cycles_at_mhz(600, 66.0);
  EXPECT_NEAR(slow.us(), 2.0 * fast.us(), 1e-6);
}

TEST(TransferTimeTest, BytesOverBandwidth) {
  // 160 MB/s, 160 bytes -> 1 us.
  EXPECT_EQ(transfer_time(160, 160.0).ps(), 1'000'000);
  // 64-byte packet on Myrinet (160 MB/s) -> 0.4 us.
  EXPECT_EQ(transfer_time(64, 160.0).ps(), 400'000);
  EXPECT_EQ(transfer_time(0, 160.0).ps(), 0);
}

TEST(FormattingTest, HumanUnits) {
  EXPECT_EQ((500_ps).str(), "500ps");
  EXPECT_NE((2_us).str().find("us"), std::string::npos);
  EXPECT_NE((3_ms).str().find("ms"), std::string::npos);
  std::ostringstream os;
  os << 2_us << " " << SimTime{1'000'000};
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace nicbar::sim
