// FaultPlan parser: the line-oriented format nicbar_run --fault-plan loads.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/fault.hpp"

namespace nicbar::sim::fault {
namespace {

TEST(FaultPlanParserTest, EmptyInputYieldsEmptyPlan) {
  const FaultPlan p = parse_fault_plan("");
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.seed, 1u);
}

TEST(FaultPlanParserTest, CommentsAndBlankLinesAreIgnored) {
  const FaultPlan p = parse_fault_plan(
      "# a scenario\n"
      "\n"
      "loss 0.01   # trailing comment\n");
  ASSERT_EQ(p.loss.size(), 1u);
  EXPECT_DOUBLE_EQ(p.loss[0].prob, 0.01);
  EXPECT_TRUE(p.loss[0].link.empty());
}

TEST(FaultPlanParserTest, FullScenarioParses) {
  const FaultPlan p = parse_fault_plan(
      "seed 42\n"
      "loss 0.02 t0->sw0\n"
      "burst 0.001 0.2 0.9 *\n"
      "corrupt 0.005 sw0->t3\n"
      "link-down 100 350 t1->sw0\n"
      "link-down 500 -\n"
      "nic-crash 3 200 800\n"
      "nic-crash 5 1000\n"
      "switch-port-down 0 2 50 75\n");
  EXPECT_EQ(p.seed, 42u);

  ASSERT_EQ(p.loss.size(), 1u);
  EXPECT_EQ(p.loss[0].link, "t0->sw0");

  ASSERT_EQ(p.bursts.size(), 1u);
  EXPECT_DOUBLE_EQ(p.bursts[0].p_enter_bad, 0.001);
  EXPECT_DOUBLE_EQ(p.bursts[0].p_exit_bad, 0.2);
  EXPECT_DOUBLE_EQ(p.bursts[0].loss_bad, 0.9);
  EXPECT_TRUE(p.bursts[0].link.empty());  // `*` = every link

  ASSERT_EQ(p.corruption.size(), 1u);
  EXPECT_EQ(p.corruption[0].link, "sw0->t3");

  ASSERT_EQ(p.link_down.size(), 2u);
  EXPECT_EQ(p.link_down[0].from, SimTime{0} + microseconds(100.0));
  EXPECT_EQ(p.link_down[0].until, SimTime{0} + microseconds(350.0));
  EXPECT_EQ(p.link_down[0].link, "t1->sw0");
  EXPECT_EQ(p.link_down[1].until, SimTime::max());  // `-` = never back up

  ASSERT_EQ(p.nic_crashes.size(), 2u);
  EXPECT_EQ(p.nic_crashes[0].node, 3u);
  EXPECT_EQ(p.nic_crashes[0].at, SimTime{0} + microseconds(200.0));
  EXPECT_EQ(p.nic_crashes[0].restart_at, SimTime{0} + microseconds(800.0));
  EXPECT_EQ(p.nic_crashes[1].restart_at, SimTime::max());  // no restart operand

  ASSERT_EQ(p.switch_ports_down.size(), 1u);
  EXPECT_EQ(p.switch_ports_down[0].switch_id, 0u);
  EXPECT_EQ(p.switch_ports_down[0].port, 2u);
  EXPECT_FALSE(p.empty());
}

TEST(FaultPlanParserTest, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_fault_plan("frobnicate 1\n"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_plan("loss 1.5\n"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_plan("loss -0.1\n"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_plan("loss\n"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_plan("link-down 500 100\n"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_plan("nic-crash 0 500 100\n"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_plan("burst 0.1 0.2\n"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_plan("switch-port-down 0 1 10 5\n"), std::runtime_error);
}

TEST(FaultPlanParserTest, ErrorNamesTheOffendingLine) {
  try {
    (void)parse_fault_plan("seed 1\nloss 2.0\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace nicbar::sim::fault
