#include "sim/exec.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace nicbar::sim::exec {
namespace {

TEST(ExecTest, ResolveWorkersNeverZero) {
  EXPECT_GE(resolve_workers(0), 1u);
  EXPECT_EQ(resolve_workers(1), 1u);
  EXPECT_EQ(resolve_workers(7), 7u);
}

TEST(ExecTest, EveryIndexRunsExactlyOnce) {
  for (unsigned workers : {1u, 2u, 4u, 16u}) {
    const std::size_t count = 257;
    std::vector<std::atomic<int>> hits(count);
    parallel_for(count, workers, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << workers << " workers";
    }
  }
}

TEST(ExecTest, ZeroCountIsNoop) {
  bool ran = false;
  parallel_for(0, 8, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ExecTest, MoreWorkersThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, 64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecTest, SerialPathRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(10, 1, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ExecTest, FirstExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 42) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ExecTest, SerialExceptionPropagates) {
  EXPECT_THROW(parallel_for(5, 1, [](std::size_t) { throw std::logic_error("boom"); }),
               std::logic_error);
}

TEST(ExecTest, ExceptionFailsFastWithoutDeadlock) {
  // The pool stops handing out work after a throw; the call still joins
  // every worker and rethrows instead of hanging or crashing.
  std::atomic<int> done{0};
  try {
    parallel_for(10000, 4, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("early");
      done.fetch_add(1);
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(done.load(), 10000);
}

}  // namespace
}  // namespace nicbar::sim::exec
