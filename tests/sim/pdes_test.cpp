// Unit tests for the conservative PDES engine parts: the keyed event queue,
// the frame arena, the LanePool, thread-ownership checking, and the
// PartitionedSimulator window loop. The end-to-end bit-identity property is
// pinned separately in tests/integration/pdes_bit_identity_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/check.hpp"
#include "sim/event_queue.hpp"
#include "sim/exec.hpp"
#include "sim/frame_arena.hpp"
#include "sim/pdes.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace nicbar::sim {
namespace {

using pdes::PartitionedSimulator;

SimTime at_ps(std::int64_t ps) { return SimTime{ps}; }

// --- EventQueue: keys and batches ------------------------------------------

TEST(EventQueueKeyed, KeyedEventsFireInKeyOrderNotInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  // Insert in reverse key order at one instant.
  q.schedule_keyed(at_ps(100), EventKey{7, 0}, [&] { fired.push_back(7); });
  q.schedule_keyed(at_ps(100), EventKey{3, 9}, [&] { fired.push_back(39); });
  q.schedule_keyed(at_ps(100), EventKey{3, 2}, [&] { fired.push_back(32); });
  SimTime t;
  while (!q.empty()) q.pop(t)();
  EXPECT_EQ(fired, (std::vector<int>{32, 39, 7}));
}

TEST(EventQueueKeyed, KeyedSortsBeforeUnkeyedAtTheSameInstant) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(at_ps(50), [&] { fired.push_back(1); });
  q.schedule(at_ps(50), [&] { fired.push_back(2); });
  q.schedule_keyed(at_ps(50), EventKey{1000, 0}, [&] { fired.push_back(3); });
  SimTime t;
  while (!q.empty()) q.pop(t)();
  // The keyed event (inserted last) still precedes both unkeyed ones, and
  // the unkeyed pair keeps insertion order.
  EXPECT_EQ(fired, (std::vector<int>{3, 1, 2}));
}

TEST(EventQueueKeyed, BatchInsertEquivalentToIndividualKeyedSchedules) {
  // Same items through schedule_keyed and schedule_batch must pop in the
  // same order — including a batch big enough to trigger the bottom-up
  // heapify fast path (batch >= heap size).
  std::vector<int> a;
  std::vector<int> b;
  const int n = 64;
  {
    EventQueue q;
    for (int i = n - 1; i >= 0; --i) {
      q.schedule_keyed(at_ps(10 + i % 3), EventKey{static_cast<std::uint64_t>(i), 0},
                       [&a, i] { a.push_back(i); });
    }
    SimTime t;
    while (!q.empty()) q.pop(t)();
  }
  {
    EventQueue q;
    q.schedule(at_ps(5), [&b] { b.push_back(-1); });  // small existing heap
    std::vector<EventQueue::BatchItem> items;
    for (int i = n - 1; i >= 0; --i) {
      items.push_back(EventQueue::BatchItem{at_ps(10 + i % 3),
                                            EventKey{static_cast<std::uint64_t>(i), 0},
                                            EventQueue::Action{[&b, i] { b.push_back(i); }}});
    }
    q.schedule_batch(items);
    SimTime t;
    while (!q.empty()) q.pop(t)();
    ASSERT_EQ(b.front(), -1);
    b.erase(b.begin());
  }
  EXPECT_EQ(a, b);
}

// --- Frame arena ------------------------------------------------------------

TEST(FrameArena, RecyclesSameSizeClass) {
  void* p1 = frame_arena::allocate(200);
  frame_arena::deallocate(p1);
  void* p2 = frame_arena::allocate(195);  // same 64-byte size class as 200
  EXPECT_EQ(p1, p2);
  frame_arena::deallocate(p2);
}

TEST(FrameArena, OversizeAllocationsFallThrough) {
  void* p = frame_arena::allocate(1 << 20);
  ASSERT_NE(p, nullptr);
  frame_arena::deallocate(p);
}

TEST(FrameArena, CoroutineFramesAllocateThroughArena) {
  // Spawning and completing many identical processes must reuse frames: the
  // second spawn's frame comes off the freelist the first one released.
  Simulator sim;
  int runs = 0;
  auto proc = [](Simulator& s, int& count) -> Task {
    co_await s.delay(Duration{10});
    ++count;
  };
  for (int i = 0; i < 100; ++i) sim.spawn(proc(sim, runs));
  sim.run();
  EXPECT_EQ(runs, 100);
}

// --- LanePool ---------------------------------------------------------------

TEST(LanePool, RunsEveryLaneExactlyOnce) {
  exec::LanePool pool(4);
  std::vector<std::atomic<int>> hits(13);
  pool.run(13, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(LanePool, StaticAssignmentIsStableAcrossRounds) {
  exec::LanePool pool(3);
  std::vector<std::thread::id> first(9);
  std::vector<std::thread::id> second(9);
  pool.run(9, [&](std::size_t i) { first[i] = std::this_thread::get_id(); });
  pool.run(9, [&](std::size_t i) { second[i] = std::this_thread::get_id(); });
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(first[i], second[i]) << "lane " << i << " migrated between rounds";
    // lane i and lane i+workers share a worker
    EXPECT_EQ(first[i], first[i % 3]);
  }
}

TEST(LanePool, SingleWorkerRunsInlineOnCaller) {
  exec::LanePool pool(1);
  const std::thread::id me = std::this_thread::get_id();
  std::vector<std::thread::id> seen(4);
  pool.run(4, [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, me);
}

TEST(LanePool, RethrowsFirstErrorByWorkerRank) {
  exec::LanePool pool(4);
  try {
    pool.run(8, [&](std::size_t i) {
      if (i % 2 == 1) throw std::runtime_error("lane " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Worker rank order: worker 1 owns lanes {1, 5}; lane 1 fails first.
    EXPECT_STREQ(e.what(), "lane 1");
  }
  // The pool must survive a throwing round.
  std::atomic<int> ok{0};
  pool.run(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

// --- Thread ownership (debug builds) ----------------------------------------

#ifndef NDEBUG
TEST(SimOwnership, CrossThreadScheduleTrips) {
  Simulator sim;
  sim.schedule_at(at_ps(10), [] {});  // first touch binds this thread
  bool threw = false;
  std::thread other([&] {
    try {
      sim.schedule_at(at_ps(20), [] {});
    } catch (const check::InvariantViolation& e) {
      threw = e.subsystem() == "sim.owner";
    }
  });
  other.join();
  EXPECT_TRUE(threw);
  sim.run();
}

TEST(SimOwnership, RunRebindsToTheCallingThread) {
  // A simulator handed to another thread (the PDES window pattern) is legal:
  // run_window()/run() re-bind ownership.
  Simulator sim;
  sim.schedule_at(at_ps(10), [] {});
  std::thread worker([&] {
    sim.run_window(at_ps(100));
    sim.schedule_at(at_ps(50), [] {});  // now owned by the worker
    sim.run_window(at_ps(100));
  });
  worker.join();
  sim.run();  // main thread re-binds and finishes
  EXPECT_EQ(sim.now(), at_ps(50));
}
#endif

// --- PartitionedSimulator ----------------------------------------------------

TEST(PartitionedSim, RejectsZeroLookaheadWithMultiplePartitions) {
  EXPECT_THROW(PartitionedSimulator(2, Duration{0}, 1), check::InvariantViolation);
  EXPECT_NO_THROW(PartitionedSimulator(1, Duration{0}, 1));
}

TEST(PartitionedSim, SinglePartitionDelegatesToSerialRun) {
  PartitionedSimulator p(1, Duration{0}, 4);
  std::vector<int> fired;
  p.lane(0).schedule_at(at_ps(10), [&] { fired.push_back(1); });
  p.lane(0).schedule_at(at_ps(20), [&] { fired.push_back(2); });
  EXPECT_EQ(p.run(), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(p.stats().windows, 0u);
}

// Two lanes ping-ponging a message through the channel matrix with a fixed
// "propagation" >= lookahead: the canonical conservative workload.
TEST(PartitionedSim, CrossLanePingPongPreservesTimeOrder) {
  for (const unsigned workers : {1u, 2u, 4u}) {
    PartitionedSimulator p(2, Duration{100}, workers);
    std::vector<std::pair<int, std::int64_t>> log;
    std::mutex log_mu;  // lanes append concurrently; order restored below
    std::function<void(std::size_t, int)> hop = [&](std::size_t lane, int n) {
      {
        const std::lock_guard<std::mutex> g(log_mu);
        log.emplace_back(n, p.lane(lane).now().ps());
      }
      if (n >= 6) return;
      const std::size_t to = 1 - lane;
      const SimTime arrive = p.lane(lane).now() + Duration{150};
      p.post(lane, to, arrive, EventKey{static_cast<std::uint64_t>(arrive.ps()), 0},
             [&, to, n] { hop(to, n + 1); });
    };
    p.lane(0).schedule_at(at_ps(0), [&] { hop(0, 0); });
    p.run();
    std::sort(log.begin(), log.end());
    ASSERT_EQ(log.size(), 7u);
    for (int n = 0; n <= 6; ++n) {
      EXPECT_EQ(log[n].first, n);
      EXPECT_EQ(log[n].second, n * 150) << "hop " << n;
    }
    EXPECT_GE(p.stats().windows, 6u);
    EXPECT_EQ(p.stats().channel_messages, 6u);
    // Both lanes land on the same final clock.
    EXPECT_EQ(p.lane(0).now(), p.lane(1).now());
  }
}

TEST(PartitionedSim, RunUntilExecutesEventsAtTheBoundaryAndParksIdleLanes) {
  PartitionedSimulator p(2, Duration{10}, 2);
  int fired = 0;
  p.lane(0).schedule_at(at_ps(100), [&] { ++fired; });
  p.lane(1).schedule_at(at_ps(300), [&] { ++fired; });
  p.run(at_ps(100));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(p.lane(0).now(), at_ps(100));
  p.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(p.lane(0).now(), at_ps(300));
  EXPECT_EQ(p.lane(1).now(), at_ps(300));
}

TEST(PartitionedSim, StragglerDeliveryTripsTheSafetyCheck) {
  // A post whose arrival undercuts the lookahead lands inside the completed
  // window — the conservative contract is broken and the drain must say so.
  PartitionedSimulator p(2, Duration{100}, 1);
  p.lane(0).schedule_at(at_ps(0), [&] {
    // Claims to arrive at t=1 while the window horizon is 0 + 100.
    p.post(0, 1, at_ps(1), EventKey{1, 0}, [] {});
  });
  p.lane(1).schedule_at(at_ps(500), [] {});
  EXPECT_THROW(p.run(), check::InvariantViolation);
}

TEST(PartitionedSim, LaneExceptionsSurfaceOnTheCoordinator) {
  PartitionedSimulator p(2, Duration{10}, 2);
  auto boom = [](Simulator& s) -> Task {
    co_await s.delay(Duration{5});
    throw std::runtime_error("boom");
  };
  p.lane(1).spawn(boom(p.lane(1)));
  p.lane(0).schedule_at(at_ps(1), [] {});
  EXPECT_THROW(p.run(), std::runtime_error);
}

}  // namespace
}  // namespace nicbar::sim
