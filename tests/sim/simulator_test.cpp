#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace nicbar::sim {
namespace {

using namespace nicbar::sim::literals;

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now().ps(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, ScheduleInAdvancesClock) {
  Simulator sim;
  SimTime fired{};
  sim.schedule_in(10_us, [&] { fired = sim.now(); });
  sim.run();
  EXPECT_EQ(fired.ps(), (10_us).ps());
  EXPECT_EQ(sim.now().ps(), (10_us).ps());
}

TEST(SimulatorTest, EventsRunInTimeOrderAcrossScheduling) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(30_us, [&] { order.push_back(3); });
  sim.schedule_in(10_us, [&] {
    order.push_back(1);
    // Nested scheduling relative to current time.
    sim.schedule_in(5_us, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RunUntilHorizonStopsAndAdvances) {
  Simulator sim;
  int count = 0;
  sim.schedule_in(1_us, [&] { ++count; });
  sim.schedule_in(100_us, [&] { ++count; });
  sim.run(SimTime{0} + 50_us);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now().ps(), (1_us).ps());  // clock rests at last executed event
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, RunToEmptyHorizonAdvancesClock) {
  Simulator sim;
  sim.run(SimTime{0} + 7_us);
  EXPECT_EQ(sim.now().ps(), (7_us).ps());
}

TEST(SimulatorTest, CancelStopsEvent) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.schedule_in(1_us, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, RequestStopHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_in(microseconds(i), [&] {
      if (++count == 3) sim.request_stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_in(1_us, [&] { ++count; });
  sim.schedule_in(2_us, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

// --- Coroutine processes -----------------------------------------------------

Task sleeper(Simulator& sim, Duration d, int& out) {
  co_await sim.delay(d);
  out = 1;
}

TEST(SimulatorCoroutineTest, SpawnRunsToCompletion) {
  Simulator sim;
  int done = 0;
  sim.spawn(sleeper(sim, 5_us, done));
  sim.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(sim.now().ps(), (5_us).ps());
  EXPECT_EQ(sim.live_process_count(), 0u);
}

Task chain_child(Simulator& sim, std::vector<int>& log) {
  log.push_back(1);
  co_await sim.delay(2_us);
  log.push_back(2);
}

Task chain_parent(Simulator& sim, std::vector<int>& log) {
  log.push_back(0);
  co_await chain_child(sim, log);
  log.push_back(3);
  co_await sim.delay(1_us);
  log.push_back(4);
}

TEST(SimulatorCoroutineTest, AwaitingChildTasks) {
  Simulator sim;
  std::vector<int> log;
  sim.spawn(chain_parent(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sim.now().ps(), (3_us).ps());
}

Task thrower(Simulator& sim) {
  co_await sim.delay(1_us);
  throw std::runtime_error("boom");
}

TEST(SimulatorCoroutineTest, DetachedExceptionSurfacesFromRun) {
  Simulator sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

Task catcher(Simulator& sim, bool& caught) {
  try {
    co_await thrower(sim);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(SimulatorCoroutineTest, ChildExceptionPropagatesToParent) {
  Simulator sim;
  bool caught = false;
  sim.spawn(catcher(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

Task forever(Simulator& sim) {
  for (;;) co_await sim.delay(1_us);
}

TEST(SimulatorCoroutineTest, TeardownWithLiveProcessesDoesNotLeakOrCrash) {
  // The sleeping process is still suspended when the simulator is destroyed;
  // its frame must be reclaimed without resuming it.
  Simulator sim;
  sim.spawn(forever(sim));
  sim.run(SimTime{0} + 10_us);
  EXPECT_EQ(sim.live_process_count(), 1u);
  // Destructor runs at end of scope.
}

Task wait_until_proc(Simulator& sim, SimTime target, SimTime& observed) {
  co_await sim.wait_until(target);
  observed = sim.now();
}

TEST(SimulatorCoroutineTest, WaitUntilAbsoluteTime) {
  Simulator sim;
  SimTime observed{};
  sim.spawn(wait_until_proc(sim, SimTime{0} + 12_us, observed));
  sim.run();
  EXPECT_EQ(observed.ps(), (12_us).ps());
}

TEST(SimulatorCoroutineTest, ManyProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> log;
  for (int i = 0; i < 50; ++i) {
    sim.spawn([](Simulator& s, std::vector<int>& l, int id) -> Task {
      co_await s.delay(microseconds(id % 7));
      l.push_back(id);
    }(sim, log, i));
  }
  sim.run();
  ASSERT_EQ(log.size(), 50u);
  // Same-delay processes complete in spawn order; groups ordered by delay.
  std::vector<int> expect;
  for (int d = 0; d < 7; ++d) {
    for (int i = 0; i < 50; ++i) {
      if (i % 7 == d) expect.push_back(i);
    }
  }
  EXPECT_EQ(log, expect);
}

TEST(SimulatorTest, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_in(microseconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

}  // namespace
}  // namespace nicbar::sim
