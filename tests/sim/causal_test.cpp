// Causal span tracer: id invariant, critical-path extraction, telescoping
// attribution, profiles — plus the end-to-end properties of a traced NIC
// barrier experiment (acyclic DAG, full attribution, and a bit-identical
// timeline with tracing on or off).
#include "sim/causal.hpp"

#include <gtest/gtest.h>

#include <cstddef>

#include "coll/runner.hpp"
#include "sim/telemetry.hpp"
#include "sim/time.hpp"

namespace nicbar {
namespace {

using sim::causal::CausalTracer;
using sim::causal::CriticalPath;
using sim::causal::kSegmentCount;
using sim::causal::PathProfile;
using sim::causal::Segment;
using sim::causal::SpanId;
using sim::Duration;
using sim::SimTime;

SimTime at_us(double us) { return SimTime{0} + sim::microseconds(us); }

TEST(CausalTracerTest, RecordAssignsMonotonicIdsAndKeepsParents) {
  CausalTracer c;
  const SpanId a = c.record(Segment::kHost, 0, "a", at_us(0), at_us(1));
  const SpanId b = c.record(Segment::kSend, 0, "b", at_us(1), at_us(2), a);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  ASSERT_NE(c.span(b), nullptr);
  ASSERT_EQ(c.span(b)->parents.size(), 1u);
  EXPECT_EQ(c.span(b)->parents.front(), a);
  EXPECT_EQ(c.span(0), nullptr);
  EXPECT_EQ(c.span(99), nullptr);
  EXPECT_TRUE(c.verify_acyclic());
}

TEST(CausalTracerTest, AddParentRejectsEdgesThatWouldBreakTheIdInvariant) {
  CausalTracer c;
  const SpanId a = c.record(Segment::kHost, 0, "a", at_us(0), at_us(1));
  const SpanId b = c.record(Segment::kHost, 0, "b", at_us(1), at_us(2));
  c.add_parent(a, b);  // parent id > span id: a back edge, silently dropped
  c.add_parent(a, a);  // self edge, silently dropped
  c.add_parent(0, a);  // no-op on the null span
  ASSERT_NE(c.span(a), nullptr);
  EXPECT_TRUE(c.span(a)->parents.empty());
  EXPECT_TRUE(c.verify_acyclic());
  c.add_parent(b, a);  // legal join
  ASSERT_EQ(c.span(b)->parents.size(), 1u);
  EXPECT_TRUE(c.verify_acyclic());
}

TEST(CausalTracerTest, CriticalPathFollowsTheLatestParentAndTelescopes) {
  // Diamond: the origin forks into a fast and a slow branch; the join waits
  // on the slow one and then idles 1us before starting (queue time).
  CausalTracer c;
  const SpanId origin = c.record(Segment::kHost, 0, "origin", at_us(0), at_us(1));
  const SpanId fast = c.record(Segment::kSend, 0, "fast", at_us(1), at_us(2), origin);
  const SpanId slow = c.record(Segment::kWire, 1, "slow", at_us(1), at_us(5), origin);
  const SpanId join = c.record(Segment::kRecv, 1, "join", at_us(6), at_us(7), fast, slow);

  const CriticalPath path = c.critical_path(join);
  ASSERT_EQ(path.steps.size(), 3u);  // origin -> slow -> join (fast is off-path)
  EXPECT_EQ(path.steps[0].span, origin);
  EXPECT_EQ(path.steps[1].span, slow);
  EXPECT_EQ(path.steps[2].span, join);
  EXPECT_EQ(path.total, sim::microseconds(7.0));
  EXPECT_EQ(path.self[static_cast<std::size_t>(Segment::kHost)], sim::microseconds(1.0));
  EXPECT_EQ(path.self[static_cast<std::size_t>(Segment::kWire)], sim::microseconds(4.0));
  EXPECT_EQ(path.self[static_cast<std::size_t>(Segment::kRecv)], sim::microseconds(1.0));
  EXPECT_EQ(path.queue[static_cast<std::size_t>(Segment::kRecv)], sim::microseconds(1.0));
  EXPECT_EQ(path.self[static_cast<std::size_t>(Segment::kSend)], Duration{0});
  // The invariant everything downstream relies on: attribution is complete.
  EXPECT_EQ(path.attributed(), path.total);
}

TEST(CausalTracerTest, ProfileAggregatesCompletedBarriers) {
  CausalTracer c;
  // Barrier 1: 2us of host work. Barrier 2: 6us (1us host + 5us wire).
  const SpanId s1 = c.record(Segment::kHost, 0, "b1", at_us(0), at_us(2));
  c.complete_barrier(0, 2, 0, s1);
  const SpanId o2 = c.record(Segment::kHost, 0, "b2", at_us(10), at_us(11));
  const SpanId w2 = c.record(Segment::kWire, 0, "b2w", at_us(11), at_us(16), o2);
  c.complete_barrier(0, 2, 1, w2);
  ASSERT_EQ(c.completed().size(), 2u);

  const PathProfile all = c.profile();
  EXPECT_EQ(all.barriers, 2u);
  EXPECT_EQ(all.total, sim::microseconds(8.0));
  EXPECT_EQ(all.attributed(), all.total);
  EXPECT_EQ(all.self[static_cast<std::size_t>(Segment::kHost)], sim::microseconds(3.0));
  EXPECT_EQ(all.self[static_cast<std::size_t>(Segment::kWire)], sim::microseconds(5.0));
  // (node, segment) hot map: both barriers ran on node 0.
  const auto host_key = std::make_pair(std::uint32_t{0},
                                       static_cast<std::uint8_t>(Segment::kHost));
  ASSERT_TRUE(all.by_node_segment.count(host_key) == 1);
  EXPECT_EQ(all.by_node_segment.at(host_key), sim::microseconds(3.0));

  // Tail filter: the threshold is the floor-ranked percentile of the barrier
  // totals, so with two samples p99 still admits both; p100 keeps only the
  // slowest barrier.
  const PathProfile p99 = c.profile(99.0);
  EXPECT_EQ(p99.barriers, 2u);
  const PathProfile tail = c.profile(100.0);
  EXPECT_EQ(tail.barriers, 1u);
  EXPECT_EQ(tail.total, sim::microseconds(6.0));
}

TEST(CausalTracerTest, ClearResetsEverything) {
  CausalTracer c;
  const SpanId s = c.record(Segment::kHost, 0, "x", at_us(0), at_us(1));
  c.complete_barrier(0, 2, 0, s);
  c.clear();
  EXPECT_EQ(c.span_count(), 0u);
  EXPECT_TRUE(c.completed().empty());
}

// --- End-to-end over a real experiment -----------------------------------------

TEST(CausalIntegrationTest, TracedBarrierDagIsAcyclicAndFullyAttributed) {
  coll::ExperimentParams p;
  p.nodes = 16;
  p.reps = 5;
  p.spec.location = coll::Location::kNic;
  sim::telemetry::Telemetry t;
  t.enable_causal();
  p.cluster.telemetry = &t;
  (void)coll::run_barrier_experiment(p);

  const CausalTracer& c = *t.causal();
  EXPECT_TRUE(c.verify_acyclic());
  // Every member completed every rep, and each completion's critical path
  // attributes the whole latency with nothing left over.
  ASSERT_EQ(c.completed().size(), 16u * 5u);
  for (const sim::causal::CompletedBarrier& cb : c.completed()) {
    const CriticalPath path = c.critical_path(cb.sink);
    EXPECT_EQ(path.total, cb.total);
    EXPECT_EQ(path.attributed(), path.total) << "barrier at node " << cb.node;
    EXPECT_FALSE(path.steps.empty());
  }
}

TEST(CausalIntegrationTest, TracingKeepsTheTimelineBitIdentical) {
  // Recording spans must never perturb simulated time: the traced run's
  // result is bit-identical to the bare run (same discipline as the rest of
  // the telemetry bundle, extended to the causal tracer).
  coll::ExperimentParams p;
  p.nodes = 8;
  p.reps = 4;
  p.spec.location = coll::Location::kNic;
  const coll::ExperimentResult bare = coll::run_barrier_experiment(p);

  sim::telemetry::Telemetry t;
  t.enable_causal();
  coll::ExperimentParams traced = p;
  traced.cluster.telemetry = &t;
  const coll::ExperimentResult wired = coll::run_barrier_experiment(traced);

  EXPECT_EQ(bare.total_us, wired.total_us);
  EXPECT_DOUBLE_EQ(bare.mean_us, wired.mean_us);
  EXPECT_EQ(bare.barrier_packets_sent, wired.barrier_packets_sent);
  EXPECT_GT(t.causal()->span_count(), 0u);
}

TEST(CausalIntegrationTest, GatherBroadcastAlsoCompletesItsDag) {
  coll::ExperimentParams p;
  p.nodes = 9;  // non-trivial tree with a fold-free shape
  p.reps = 3;
  p.spec.location = coll::Location::kNic;
  p.spec.algorithm = nic::BarrierAlgorithm::kGatherBroadcast;
  p.spec.gb_dimension = 3;
  sim::telemetry::Telemetry t;
  t.enable_causal();
  p.cluster.telemetry = &t;
  (void)coll::run_barrier_experiment(p);

  const CausalTracer& c = *t.causal();
  EXPECT_TRUE(c.verify_acyclic());
  ASSERT_EQ(c.completed().size(), 9u * 3u);
  for (const sim::causal::CompletedBarrier& cb : c.completed()) {
    const CriticalPath path = c.critical_path(cb.sink);
    EXPECT_EQ(path.attributed(), path.total);
  }
}

}  // namespace
}  // namespace nicbar
