// Telemetry layer: metrics registry, trace-event sink, cost breakdown, and
// the end-to-end wiring through a real NIC-barrier experiment.
#include "sim/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>

#include "coll/runner.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using sim::telemetry::BreakdownCollector;
using sim::telemetry::CostBreakdown;
using sim::telemetry::MetricsRegistry;
using sim::telemetry::Telemetry;
using sim::telemetry::TraceEventSink;

// --- A minimal JSON validity checker -------------------------------------------
//
// Enough of a recursive-descent parser to reject structurally broken output
// (unbalanced braces, missing commas, bad string escapes, malformed numbers).

struct JsonChecker {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' || s[i] == '\r')) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool string() {
    ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
      }
      ++i;
    }
    return eat('"');
  }
  bool number() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) != 0 || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    return i > start;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    if (s[i] == '{') return object();
    if (s[i] == '[') return array();
    if (s[i] == '"') return string();
    if (s.compare(i, 4, "true") == 0) return i += 4, true;
    if (s.compare(i, 5, "false") == 0) return i += 5, true;
    if (s.compare(i, 4, "null") == 0) return i += 4, true;
    return number();
  }
  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool document() {
    if (!value()) return false;
    ws();
    return i == s.size();
  }
};

bool valid_json(const std::string& s) {
  JsonChecker c{s};
  return c.document();
}

// --- MetricsRegistry -----------------------------------------------------------

TEST(MetricsRegistryTest, CounterRegistrationAndLookup) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find_counter("nic0.acks_sent"), nullptr);

  m.counter("nic0.acks_sent") += 3;
  m.counter("nic0.acks_sent") += 2;
  ASSERT_NE(m.find_counter("nic0.acks_sent"), nullptr);
  EXPECT_EQ(*m.find_counter("nic0.acks_sent"), 5u);
  EXPECT_EQ(m.size(), 1u);

  m.gauge("pci.utilisation") = 0.25;
  ASSERT_NE(m.find_gauge("pci.utilisation"), nullptr);
  EXPECT_DOUBLE_EQ(*m.find_gauge("pci.utilisation"), 0.25);

  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find_counter("nic0.acks_sent"), nullptr);
}

TEST(MetricsRegistryTest, HistogramKeepsFirstRange) {
  MetricsRegistry m;
  sim::Histogram& h = m.histogram("latency_us", 0.0, 200.0, 20);
  h.add(101.0);
  // Second call with different bounds must return the same histogram.
  sim::Histogram& again = m.histogram("latency_us", 0.0, 5.0, 2);
  EXPECT_EQ(&h, &again);
  EXPECT_DOUBLE_EQ(again.hi(), 200.0);
  EXPECT_EQ(again.count(), 1u);
}

TEST(MetricsRegistryTest, WriteJsonIsValidAndComplete) {
  MetricsRegistry m;
  m.counter("a.count") = 7;
  m.gauge("b.util") = 0.5;
  m.histogram("c.lat", 0.0, 10.0, 10).add(4.0);
  std::ostringstream os;
  m.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(json.find("\"a.count\": 7"), std::string::npos);
  EXPECT_NE(json.find("b.util"), std::string::npos);
  EXPECT_NE(json.find("c.lat"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonEscapesSpecialCharacters) {
  EXPECT_EQ(sim::telemetry::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// --- TraceEventSink ------------------------------------------------------------

TEST(TraceEventSinkTest, TracksAreStableAndDeduplicated) {
  TraceEventSink t;
  const int a = t.track("nic0/sdma");
  const int b = t.track("nic0/send");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.track("nic0/sdma"), a);
  EXPECT_EQ(t.track_count(), 2u);
}

TEST(TraceEventSinkTest, RecordsDurationAndInstantEvents) {
  TraceEventSink t;
  const int a = t.track("link/x");
  const int b = t.track("link/y");
  t.duration(a, "tx", sim::SimTime{1000}, sim::Duration{500}, "net");
  t.duration(a, "tx", sim::SimTime{2000}, sim::Duration{500}, "net");
  t.instant(b, "drop", sim::SimTime{3000});
  EXPECT_EQ(t.event_count(), 3u);
  EXPECT_EQ(t.events_on(a), 2u);
  EXPECT_EQ(t.events_on(b), 1u);
}

TEST(TraceEventSinkTest, WriteJsonIsValidChromeTraceFormat) {
  TraceEventSink t;
  const int a = t.track("nic0/sdma");
  t.duration(a, "detect+setup", sim::SimTime{0} + sim::microseconds(1.5),
             sim::microseconds(2.0));
  t.instant(a, "fire", sim::SimTime{0} + sim::microseconds(9.0));
  std::ostringstream os;
  t.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);  // thread_name metadata
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  // ts is microseconds of simulated time.
  EXPECT_NE(json.find("\"ts\": 1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2.000"), std::string::npos);
}

TEST(TraceEventSinkTest, MaskFiltersAtEmissionTime) {
  TraceEventSink t;
  t.set_mask(static_cast<std::uint32_t>(sim::TraceCategory::kBarrier));
  const int a = t.track("mcp0");
  t.duration(a, "keep", sim::SimTime{1000}, sim::Duration{500}, "sim",
             sim::TraceCategory::kBarrier);
  t.duration(a, "drop", sim::SimTime{2000}, sim::Duration{500}, "sim",
             sim::TraceCategory::kNet);
  t.instant(a, "drop", sim::SimTime{3000}, "sim", sim::TraceCategory::kHost);
  t.flow_start(a, "drop", sim::SimTime{4000}, 9, "sim", sim::TraceCategory::kReliab);
  EXPECT_EQ(t.event_count(), 1u);
  t.set_mask(static_cast<std::uint32_t>(sim::TraceCategory::kAll));
  t.flow_end(a, "keep", sim::SimTime{5000}, 9);
  EXPECT_EQ(t.event_count(), 2u);
}

TEST(TraceEventSinkTest, GoldenJsonPinsFlowEventsAndCausalIds) {
  // Pins the exact Chrome-trace serialisation of the three id-carrying event
  // shapes: an "X" with args.id, and an "s"/"f" flow pair bound by the same
  // packet id ("bp": "e" attaches the arrowhead to the enclosing slice).
  // Perfetto renders the pair as an arrow following the packet from the
  // sender's SEND engine to the receiver's RECV engine — byte-for-byte
  // changes here break saved traces and the flow-arrow rendering.
  TraceEventSink t;
  const int tx = t.track("nic0/send");
  const int rx = t.track("nic1/recv");
  t.duration(tx, "tx", sim::SimTime{0} + sim::microseconds(1.0), sim::microseconds(2.0),
             "nic", sim::TraceCategory::kSend, 7);
  t.flow_start(tx, "pkt", sim::SimTime{0} + sim::microseconds(3.0), 7, "net",
               sim::TraceCategory::kNet);
  t.flow_end(rx, "pkt", sim::SimTime{0} + sim::microseconds(4.5), 7, "net",
             sim::TraceCategory::kNet);
  t.duration(rx, "rx", sim::SimTime{0} + sim::microseconds(4.5), sim::microseconds(1.0),
             "nic", sim::TraceCategory::kRecv);  // id 0: no args block
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(),
            "{\"traceEvents\": [\n"
            "  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 0, \"tid\": 0, "
            "\"args\": {\"name\": \"nic0/send\"}},\n"
            "  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 0, \"tid\": 1, "
            "\"args\": {\"name\": \"nic1/recv\"}},\n"
            "  {\"ph\": \"X\", \"name\": \"tx\", \"cat\": \"nic\", \"pid\": 0, \"tid\": 0, "
            "\"ts\": 1.000, \"dur\": 2.000, \"args\": {\"id\": 7}},\n"
            "  {\"ph\": \"s\", \"name\": \"pkt\", \"cat\": \"net\", \"pid\": 0, \"tid\": 0, "
            "\"ts\": 3.000, \"id\": 7},\n"
            "  {\"ph\": \"f\", \"bp\": \"e\", \"name\": \"pkt\", \"cat\": \"net\", \"pid\": 0, "
            "\"tid\": 1, \"ts\": 4.500, \"id\": 7},\n"
            "  {\"ph\": \"X\", \"name\": \"rx\", \"cat\": \"nic\", \"pid\": 0, \"tid\": 1, "
            "\"ts\": 4.500, \"dur\": 1.000}\n"
            "]}\n");
}

// --- BreakdownCollector ---------------------------------------------------------

TEST(BreakdownCollectorTest, ComponentsSumToTotalExactly) {
  BreakdownCollector c;
  const sim::SimTime t0{0};
  c.barrier_posted(0, 2, 0, t0, sim::microseconds(2.0));
  c.add_nic(0, 2, 0, sim::microseconds(10.0));
  c.add_dma(0, 2, 0, sim::microseconds(0.5));
  c.add_wire(0, 2, 0, sim::microseconds(1.0));
  c.barrier_completed(0, 2, 0, t0 + sim::microseconds(20.0), sim::microseconds(6.0));

  ASSERT_EQ(c.barriers(), 1u);
  const CostBreakdown& b = c.last();
  EXPECT_DOUBLE_EQ(b.total_us, 20.0);
  EXPECT_DOUBLE_EQ(b.host_us, 8.0);
  EXPECT_DOUBLE_EQ(b.nic_us, 10.0);
  EXPECT_DOUBLE_EQ(b.dma_us, 0.5);
  EXPECT_DOUBLE_EQ(b.wire_us, 1.0);
  EXPECT_DOUBLE_EQ(b.wait_us, 0.5);
  // The acceptance bound: the terms sum to the total within 1 ns.
  EXPECT_NEAR(b.sum_us(), b.total_us, 1e-3);
}

TEST(BreakdownCollectorTest, CompletionWithoutPostIsIgnored) {
  BreakdownCollector c;
  c.add_nic(3, 2, 7, sim::microseconds(5.0));  // charges before any post
  c.barrier_completed(3, 2, 7, sim::SimTime{0} + sim::microseconds(1.0),
                      sim::microseconds(1.0));
  EXPECT_EQ(c.barriers(), 0u);
}

TEST(BreakdownCollectorTest, MeanPreservesSumInvariant) {
  BreakdownCollector c;
  const sim::SimTime t0{0};
  for (std::uint32_t e = 0; e < 3; ++e) {
    c.barrier_posted(1, 2, e, t0 + sim::microseconds(100.0 * e), sim::microseconds(2.0));
    c.add_nic(1, 2, e, sim::microseconds(3.0 + e));
    c.barrier_completed(1, 2, e, t0 + sim::microseconds(100.0 * e + 11.0 + 2.0 * e),
                        sim::microseconds(6.0));
  }
  const CostBreakdown m = c.mean();
  EXPECT_EQ(c.barriers(), 3u);
  EXPECT_NEAR(m.sum_us(), m.total_us, 1e-3);
  EXPECT_DOUBLE_EQ(m.total_us, 13.0);
  EXPECT_DOUBLE_EQ(m.nic_us, 4.0);
}

TEST(BreakdownCollectorTest, SnapshotExportsGauges) {
  BreakdownCollector c;
  c.barrier_posted(0, 2, 0, sim::SimTime{0}, sim::microseconds(1.0));
  c.barrier_completed(0, 2, 0, sim::SimTime{0} + sim::microseconds(4.0),
                      sim::microseconds(1.0));
  MetricsRegistry m;
  c.snapshot(m);
  ASSERT_NE(m.find_counter("breakdown.barriers"), nullptr);
  EXPECT_EQ(*m.find_counter("breakdown.barriers"), 1u);
  ASSERT_NE(m.find_gauge("breakdown.total_us"), nullptr);
  EXPECT_DOUBLE_EQ(*m.find_gauge("breakdown.total_us"), 4.0);
}

// --- End-to-end: a real NIC barrier with the bundle attached ---------------------

coll::ExperimentParams instrumented_params(Telemetry& telemetry, int reps) {
  coll::ExperimentParams p;
  p.nodes = 4;
  p.reps = reps;
  p.spec.location = coll::Location::kNic;
  p.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  p.cluster.telemetry = &telemetry;
  return p;
}

TEST(TelemetryIntegrationTest, CountersAreRegisteredAndMonotonic) {
  Telemetry t1, t3;
  (void)coll::run_barrier_experiment(instrumented_params(t1, 1));
  (void)coll::run_barrier_experiment(instrumented_params(t3, 3));

  for (Telemetry* t : {&t1, &t3}) {
    const auto* completed = t->metrics().find_counter("nic0.barriers_completed");
    ASSERT_NE(completed, nullptr);
    ASSERT_NE(t->metrics().find_counter("nic0.engine.sdma.cycles"), nullptr);
    ASSERT_NE(t->metrics().find_counter("node0.pci.jobs"), nullptr);
    ASSERT_NE(t->metrics().find_gauge("nic0.proc.utilisation"), nullptr);
  }
  // More barriers -> strictly more of everything barrier-related.
  EXPECT_EQ(*t1.metrics().find_counter("nic0.barriers_completed"), 1u);
  EXPECT_EQ(*t3.metrics().find_counter("nic0.barriers_completed"), 3u);
  EXPECT_GT(*t3.metrics().find_counter("nic0.barrier_packets_sent"),
            *t1.metrics().find_counter("nic0.barrier_packets_sent"));
  EXPECT_GT(*t3.metrics().find_counter("nic0.engine.rdma.cycles"),
            *t1.metrics().find_counter("nic0.engine.rdma.cycles"));
  EXPECT_GT(*t3.metrics().find_counter("nic0.barrier_pe_rounds"),
            *t1.metrics().find_counter("nic0.barrier_pe_rounds"));
}

TEST(TelemetryIntegrationTest, EngineCyclesCoverProcessorBusyTime) {
  Telemetry t;
  (void)coll::run_barrier_experiment(instrumented_params(t, 5));
  // Every firmware job is attributed to exactly one engine, so the per-engine
  // cycle counters must sum to the processor's total busy time.
  for (int n = 0; n < 4; ++n) {
    const std::string pfx = "nic" + std::to_string(n) + ".";
    std::uint64_t engine_cycles = 0;
    for (const char* e : {"sdma", "send", "recv", "rdma"}) {
      const auto* c = t.metrics().find_counter(pfx + "engine." + e + ".cycles");
      ASSERT_NE(c, nullptr);
      engine_cycles += *c;
    }
    const auto* busy_ps = t.metrics().find_counter(pfx + "proc.busy_ps");
    ASSERT_NE(busy_ps, nullptr);
    // 33 MHz: one cycle is 30303 ps.
    const double busy_cycles = static_cast<double>(*busy_ps) / 30303.0;
    EXPECT_NEAR(static_cast<double>(engine_cycles), busy_cycles,
                0.01 * busy_cycles + 1.0);
  }
}

TEST(TelemetryIntegrationTest, BreakdownTermsSumWithinOneNanosecond) {
  Telemetry t;
  t.enable_breakdown();
  const int reps = 4;
  coll::ExperimentParams p = instrumented_params(t, reps);
  const coll::ExperimentResult r = coll::run_barrier_experiment(p);

  const BreakdownCollector* bc = t.breakdown();
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(bc->barriers(), p.nodes * static_cast<std::uint64_t>(reps));
  const CostBreakdown m = bc->mean();
  EXPECT_GT(m.total_us, 0.0);
  EXPECT_GT(m.host_us, 0.0);
  EXPECT_GT(m.nic_us, 0.0);
  EXPECT_GT(m.dma_us, 0.0);
  EXPECT_GT(m.wire_us, 0.0);
  EXPECT_NEAR(m.sum_us(), m.total_us, 1e-3);  // within 1 ns
  EXPECT_NEAR(m.sum_us() - m.wait_us + m.wait_us, m.total_us, 1e-3);
  // The per-member barrier latency must be in the same regime as the
  // experiment's reported mean (they measure slightly different intervals).
  EXPECT_NEAR(m.total_us, r.mean_us, 0.25 * r.mean_us);
}

TEST(TelemetryIntegrationTest, TraceHasSpansPerEnginePerBarrierRound) {
  Telemetry t;
  TraceEventSink& sink = t.enable_trace();
  const int reps = 3;
  (void)coll::run_barrier_experiment(instrumented_params(t, reps));

  // One track per NIC engine, each with at least one span per barrier round.
  for (int n = 0; n < 4; ++n) {
    for (const char* e : {"sdma", "send", "recv", "rdma"}) {
      const std::string name = "nic" + std::to_string(n) + "/" + e;
      const int id = sink.track(name);  // finds the existing track
      EXPECT_GE(sink.events_on(id), static_cast<std::size_t>(reps)) << name;
    }
  }
  // Links got their own tracks too (4 terminals on one switch = 8 links).
  std::size_t link_tracks = 0;
  for (const std::string& name : sink.track_names()) {
    if (name.rfind("link/", 0) == 0) ++link_tracks;
  }
  EXPECT_EQ(link_tracks, 8u);

  std::ostringstream os;
  sink.write_json(os);
  EXPECT_TRUE(valid_json(os.str()));
}

TEST(TelemetryIntegrationTest, TraceMaskFiltersEndToEnd) {
  // The same experiment traced twice: unfiltered, and restricted to the
  // receive-engine category. The mask must thin the event stream at the sink
  // (no call-site changes), and the full stream must carry the paired flow
  // events that follow each packet across tracks.
  coll::ExperimentParams p;
  p.nodes = 4;
  p.reps = 3;
  p.spec.location = coll::Location::kNic;

  Telemetry full;
  full.enable_trace();
  p.cluster.telemetry = &full;
  (void)coll::run_barrier_experiment(p);

  Telemetry masked;
  masked.enable_trace().set_mask(static_cast<std::uint32_t>(sim::TraceCategory::kRecv));
  coll::ExperimentParams p2 = p;
  p2.cluster.telemetry = &masked;
  (void)coll::run_barrier_experiment(p2);

  EXPECT_GT(masked.trace()->event_count(), 0u);
  EXPECT_LT(masked.trace()->event_count(), full.trace()->event_count());

  // The NIC engines emit sdma/send/recv/rdma sink events; nothing carries the
  // barrier category, so masking on it empties the stream entirely.
  Telemetry none;
  none.enable_trace().set_mask(static_cast<std::uint32_t>(sim::TraceCategory::kBarrier));
  coll::ExperimentParams p3 = p;
  p3.cluster.telemetry = &none;
  (void)coll::run_barrier_experiment(p3);
  EXPECT_EQ(none.trace()->event_count(), 0u);

  std::ostringstream os;
  full.trace()->write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"id\": "), std::string::npos);

  std::ostringstream os2;
  masked.trace()->write_json(os2);
  EXPECT_TRUE(valid_json(os2.str()));
}

TEST(TelemetryIntegrationTest, DetachedTelemetryKeepsTimelineIdentical) {
  // The zero-cost discipline, observed end to end: attaching the full bundle
  // must not change any simulated timestamp.
  coll::ExperimentParams plain;
  plain.nodes = 4;
  plain.reps = 3;
  plain.spec.location = coll::Location::kNic;
  const double bare_us = coll::run_barrier_experiment(plain).mean_us;

  Telemetry t;
  t.enable_trace();
  t.enable_breakdown();
  coll::ExperimentParams wired = plain;
  wired.cluster.telemetry = &t;
  const double wired_us = coll::run_barrier_experiment(wired).mean_us;

  EXPECT_DOUBLE_EQ(bare_us, wired_us);
}

}  // namespace
}  // namespace nicbar
