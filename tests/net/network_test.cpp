#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/topology.hpp"

namespace nicbar::net {
namespace {

using namespace nicbar::sim::literals;
using sim::SimTime;
using sim::Simulator;

Packet packet_between(NodeId src, NodeId dst, std::int64_t payload = 8) {
  Packet p;
  p.src_node = src;
  p.dst_node = dst;
  p.payload_bytes = payload;
  return p;
}

TEST(NetworkTest, SingleSwitchDelivery) {
  Simulator sim;
  Network net(sim);
  build_single_switch(net, 4);
  ASSERT_EQ(net.terminal_count(), 4u);
  ASSERT_EQ(net.switch_count(), 1u);

  std::vector<Packet> got;
  net.set_deliver(2, [&](Packet p) { got.push_back(std::move(p)); });
  net.inject(packet_between(0, 2));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].src_node, 0);
  EXPECT_EQ(got[0].dst_node, 2);
}

TEST(NetworkTest, RouteOnSingleSwitchIsOneHop) {
  Simulator sim;
  Network net(sim);
  build_single_switch(net, 8);
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      if (a == b) continue;
      EXPECT_EQ(net.hop_count(a, b), 1u);
      EXPECT_EQ(net.route(a, b)[0], b);  // port b on the switch
    }
  }
}

TEST(NetworkTest, LatencyMatchesModel) {
  Simulator sim;
  LinkParams lp;
  lp.bandwidth_mbps = 160.0;
  lp.propagation = sim::nanoseconds(100);
  lp.header_bytes = 16;
  SwitchParams sp;
  sp.routing_latency = sim::nanoseconds(300);
  Network net(sim, lp, sp);
  build_single_switch(net, 2);

  SimTime arrived{};
  net.set_deliver(1, [&](Packet) { arrived = sim.now(); });
  net.inject(packet_between(0, 1, 8));
  sim.run();
  // Uplink wire: (16 hdr + 1 route + 8 payload)=25B @160MB/s = 156.25ns,
  // +100ns prop; switch 300ns; downlink wire 156.25ns (route byte still
  // counted in size model) +100ns prop.
  const std::int64_t wire = sim::transfer_time(25, 160.0).ps();
  EXPECT_EQ(arrived.ps(), 2 * wire + 2 * 100'000 + 300'000);
}

TEST(NetworkTest, AllPairsDeliverOnSingleSwitch16) {
  Simulator sim;
  Network net(sim);
  build_single_switch(net, 16);
  int delivered = 0;
  for (NodeId t = 0; t < 16; ++t) {
    net.set_deliver(t, [&](Packet) { ++delivered; });
  }
  int sent = 0;
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      if (a == b) continue;
      net.inject(packet_between(a, b));
      ++sent;
    }
  }
  sim.run();
  EXPECT_EQ(delivered, sent);
}

TEST(NetworkTest, OutputContentionSerializesFlows) {
  Simulator sim;
  LinkParams lp;
  lp.bandwidth_mbps = 160.0;
  lp.propagation = sim::Duration{0};
  lp.header_bytes = 0;
  SwitchParams sp;
  sp.routing_latency = sim::Duration{0};
  Network net(sim, lp, sp);
  build_single_switch(net, 3);

  std::vector<SimTime> arrivals;
  net.set_deliver(2, [&](Packet) { arrivals.push_back(sim.now()); });
  // Two senders to the same destination; 160B payload = 1us+route byte time each.
  net.inject(packet_between(0, 2, 160));
  net.inject(packet_between(1, 2, 160));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second arrival is serialized behind the first on the switch->t2 link.
  EXPECT_GT(arrivals[1].ps(), arrivals[0].ps());
  EXPECT_NEAR(static_cast<double>(arrivals[1].ps() - arrivals[0].ps()),
              static_cast<double>(sim::transfer_time(161, 160.0).ps()), 1e5);
}

TEST(NetworkTest, PacketIdsAreUnique) {
  Simulator sim;
  Network net(sim);
  build_single_switch(net, 2);
  std::vector<std::uint64_t> ids;
  net.set_deliver(1, [&](Packet p) { ids.push_back(p.id); });
  for (int i = 0; i < 5; ++i) net.inject(packet_between(0, 1));
  sim.run();
  ASSERT_EQ(ids.size(), 5u);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_NE(ids[i], ids[i - 1]);
  EXPECT_EQ(net.packets_injected(), 5u);
}

TEST(NetworkTest, MisroutedPacketIsCounted) {
  Simulator sim;
  Network net(sim);
  const int sw = net.add_switch(2);
  const NodeId t0 = net.add_terminal();
  const NodeId t1 = net.add_terminal();
  net.connect_terminal(t0, sw, 0);
  net.connect_terminal(t1, sw, 1);
  net.finalize();

  // Inject with a corrupted route (empty) directly through the uplink.
  Packet p = packet_between(t0, t1);
  p.route = {};  // no route bytes: switch must drop it
  net.uplink(t0).transmit(std::move(p));
  sim.run();
  EXPECT_EQ(net.switch_at(sw).packets_misrouted(), 1u);
}

}  // namespace
}  // namespace nicbar::net
