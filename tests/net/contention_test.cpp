// Fabric contention behaviour: output-port serialization, trunk bottlenecks,
// and barrier traffic over multi-switch topologies.
#include <gtest/gtest.h>

#include <vector>

#include "coll/runner.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"

namespace nicbar {
namespace {

using net::NodeId;
using net::Packet;
using sim::SimTime;
using sim::Simulator;

TEST(ContentionTest, ManyToOneSerializesOnDownlink) {
  Simulator sim;
  net::LinkParams lp;
  lp.bandwidth_mbps = 160.0;
  lp.propagation = sim::Duration{0};
  lp.header_bytes = 0;
  net::SwitchParams sp;
  sp.routing_latency = sim::Duration{0};
  net::Network net(sim, lp, sp);
  net::build_single_switch(net, 9);

  std::vector<SimTime> arrivals;
  net.set_deliver(8, [&](Packet) { arrivals.push_back(sim.now()); });
  for (NodeId i = 0; i < 8; ++i) {
    Packet p;
    p.src_node = i;
    p.dst_node = 8;
    p.payload_bytes = 1600;  // 10us of wire each
    net.inject(std::move(p));
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 8u);
  // The switch->terminal link is the bottleneck: arrivals are spaced by a
  // full wire time (1601 bytes with the route byte).
  const double gap_us = sim::transfer_time(1601, 160.0).us();
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NEAR((arrivals[i] - arrivals[i - 1]).us(), gap_us, 0.1) << i;
  }
}

TEST(ContentionTest, DisjointPairsDoNotInterfere) {
  Simulator sim;
  net::Network net(sim);
  net::build_single_switch(net, 8);
  std::vector<SimTime> arrivals(8);
  for (NodeId i = 4; i < 8; ++i) {
    net.set_deliver(i, [&, i](Packet) { arrivals[i] = sim.now(); });
  }
  // 0->4, 1->5, 2->6, 3->7 simultaneously: a crossbar carries all four at
  // full rate; every arrival lands at the same instant.
  for (NodeId i = 0; i < 4; ++i) {
    Packet p;
    p.src_node = i;
    p.dst_node = static_cast<NodeId>(i + 4);
    p.payload_bytes = 1024;
    net.inject(std::move(p));
  }
  sim.run();
  for (NodeId i = 5; i < 8; ++i) EXPECT_EQ(arrivals[i].ps(), arrivals[4].ps());
}

TEST(ContentionTest, ChainTrunkIsSharedBottleneck) {
  Simulator sim;
  net::LinkParams lp;
  lp.propagation = sim::Duration{0};
  lp.header_bytes = 0;
  net::SwitchParams sp;
  sp.routing_latency = sim::Duration{0};
  net::Network net(sim, lp, sp);
  net::build_switch_chain(net, 8, 4);  // two switches, trunk between them

  std::vector<SimTime> arrivals;
  for (NodeId d = 4; d < 8; ++d) {
    net.set_deliver(d, [&](Packet) { arrivals.push_back(sim.now()); });
  }
  // All four left-side nodes send across the trunk to distinct right-side
  // nodes: despite distinct destinations, the trunk serializes them.
  for (NodeId i = 0; i < 4; ++i) {
    Packet p;
    p.src_node = i;
    p.dst_node = static_cast<NodeId>(i + 4);
    p.payload_bytes = 1600;
    net.inject(std::move(p));
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 4u);
  const double span = (arrivals.back() - arrivals.front()).us();
  // Spread over ~3 extra wire times, not simultaneous.
  EXPECT_GT(span, 2.5 * sim::transfer_time(1602, 160.0).us());
}

class BarrierOverTopology : public ::testing::TestWithParam<host::Topology> {};

TEST_P(BarrierOverTopology, NicPeBarrierCompletesEverywhere) {
  coll::ExperimentParams p;
  p.nodes = 16;
  p.reps = 10;
  p.spec.location = coll::Location::kNic;
  p.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  p.cluster.topology = GetParam();
  p.cluster.chain_per_switch = 4;
  p.cluster.tree_radix = 8;
  p.max_start_skew = sim::microseconds(100.0);
  const coll::ExperimentResult r = coll::run_barrier_experiment(p);
  EXPECT_EQ(r.barriers_completed, 16u * 10u);
  EXPECT_EQ(r.bit_collisions, 0u);
}

TEST_P(BarrierOverTopology, HostGbBarrierCompletesEverywhere) {
  coll::ExperimentParams p;
  p.nodes = 16;
  p.reps = 5;
  p.spec.location = coll::Location::kHost;
  p.spec.algorithm = nic::BarrierAlgorithm::kGatherBroadcast;
  p.spec.gb_dimension = 3;
  p.cluster.topology = GetParam();
  p.cluster.chain_per_switch = 4;
  p.cluster.tree_radix = 8;
  const coll::ExperimentResult r = coll::run_barrier_experiment(p);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_GT(r.mean_us, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Topologies, BarrierOverTopology,
                         ::testing::Values(host::Topology::kSingleSwitch,
                                           host::Topology::kSwitchChain,
                                           host::Topology::kSwitchTree),
                         [](const auto& info) {
                           switch (info.param) {
                             case host::Topology::kSingleSwitch: return "SingleSwitch";
                             case host::Topology::kSwitchChain: return "Chain";
                             case host::Topology::kSwitchTree: return "Tree";
                           }
                           return "?";
                         });

TEST(ContentionTest, MultiHopBarrierSlowerThanSingleSwitch) {
  auto mean_for = [](host::Topology t) {
    coll::ExperimentParams p;
    p.nodes = 16;
    p.reps = 30;
    p.spec.location = coll::Location::kNic;
    p.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
    p.cluster.topology = t;
    p.cluster.chain_per_switch = 4;
    return coll::run_barrier_experiment(p).mean_us;
  };
  EXPECT_LT(mean_for(host::Topology::kSingleSwitch), mean_for(host::Topology::kSwitchChain));
}

}  // namespace
}  // namespace nicbar
