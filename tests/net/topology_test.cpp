#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"

namespace nicbar::net {
namespace {

using sim::Simulator;

void expect_all_pairs_reachable(Simulator& sim, Network& net) {
  const auto n = static_cast<NodeId>(net.terminal_count());
  std::vector<std::vector<int>> got(n, std::vector<int>(n, 0));
  for (NodeId t = 0; t < n; ++t) {
    net.set_deliver(t, [&, t](Packet p) { ++got[p.src_node][t]; });
  }
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      Packet p;
      p.src_node = a;
      p.dst_node = b;
      p.payload_bytes = 4;
      net.inject(std::move(p));
    }
  }
  sim.run();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      EXPECT_EQ(got[a][b], 1) << "pair " << a << "->" << b;
    }
  }
}

TEST(TopologyTest, SingleSwitchSizes) {
  for (std::size_t nodes : {2u, 4u, 8u, 16u}) {
    Simulator sim;
    Network net(sim);
    build_single_switch(net, nodes);
    EXPECT_EQ(net.terminal_count(), nodes);
    EXPECT_EQ(net.switch_count(), 1u);
    expect_all_pairs_reachable(sim, net);
  }
}

TEST(TopologyTest, SwitchChainReachability) {
  Simulator sim;
  Network net(sim);
  build_switch_chain(net, 12, 4);
  EXPECT_EQ(net.switch_count(), 3u);
  expect_all_pairs_reachable(sim, net);
}

TEST(TopologyTest, SwitchChainHopCountsGrowWithDistance) {
  Simulator sim;
  Network net(sim);
  build_switch_chain(net, 12, 4);
  // Terminals 0 and 1 share a switch (1 hop); 0 and 11 cross all three.
  EXPECT_EQ(net.hop_count(0, 1), 1u);
  EXPECT_EQ(net.hop_count(0, 11), 3u);
}

TEST(TopologyTest, SwitchTreeSmall) {
  Simulator sim;
  Network net(sim);
  build_switch_tree(net, 16, 8);
  expect_all_pairs_reachable(sim, net);
}

TEST(TopologyTest, SwitchTreeLarge) {
  Simulator sim;
  Network net(sim);
  build_switch_tree(net, 128, 16);
  EXPECT_EQ(net.terminal_count(), 128u);
  // Spot-check reachability on a few pairs (all-pairs is O(n^2) packets).
  int delivered = 0;
  for (NodeId t = 0; t < 128; ++t) net.set_deliver(t, [&](Packet) { ++delivered; });
  const NodeId pairs[][2] = {{0, 127}, {0, 1}, {63, 64}, {127, 0}, {17, 91}};
  for (auto& pr : pairs) {
    Packet p;
    p.src_node = pr[0];
    p.dst_node = pr[1];
    net.inject(std::move(p));
  }
  sim.run();
  EXPECT_EQ(delivered, 5);
}

TEST(TopologyTest, TreeRejectsBadRadix) {
  Simulator sim;
  Network net(sim);
  EXPECT_THROW(build_switch_tree(net, 8, 1), std::invalid_argument);
}

TEST(TopologyTest, ChainRejectsZeroPerSwitch) {
  Simulator sim;
  Network net(sim);
  EXPECT_THROW(build_switch_chain(net, 8, 0), std::invalid_argument);
}

TEST(TopologyTest, TreeHopCountReflectsDepth) {
  Simulator sim;
  Network net(sim);
  build_switch_tree(net, 32, 8);
  // Terminals on the same leaf: 1 hop. Terminals under different leaves: more.
  EXPECT_EQ(net.hop_count(0, 1), 1u);
  EXPECT_GT(net.hop_count(0, 31), 1u);
}

}  // namespace
}  // namespace nicbar::net
