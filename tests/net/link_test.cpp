#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nicbar::net {
namespace {

using namespace nicbar::sim::literals;
using sim::SimTime;
using sim::Simulator;

Packet small_packet(std::int64_t payload = 8) {
  Packet p;
  p.type = PacketType::kData;
  p.src_node = 0;
  p.dst_node = 1;
  p.payload_bytes = payload;
  return p;
}

TEST(LinkTest, DeliversAfterWireAndPropagation) {
  Simulator sim;
  LinkParams lp;
  lp.bandwidth_mbps = 160.0;
  lp.propagation = sim::nanoseconds(100);
  lp.header_bytes = 16;
  Link link(sim, lp, "l");
  std::vector<SimTime> arrivals;
  link.set_deliver([&](Packet) { arrivals.push_back(sim.now()); });

  Packet p = small_packet(8);  // wire bytes: 16 + 0 route + 8 = 24
  link.transmit(std::move(p));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  // 24B @160MB/s = 150ns, +100ns propagation = 250ns.
  EXPECT_EQ(arrivals[0].ps(), 250'000);
}

TEST(LinkTest, BackToBackPacketsSerialize) {
  Simulator sim;
  LinkParams lp;
  lp.bandwidth_mbps = 160.0;
  lp.propagation = sim::Duration{0};
  lp.header_bytes = 0;
  Link link(sim, lp, "l");
  std::vector<SimTime> arrivals;
  link.set_deliver([&](Packet) { arrivals.push_back(sim.now()); });

  link.transmit(small_packet(160));  // 1us of wire each
  link.transmit(small_packet(160));
  link.transmit(small_packet(160));
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0].ps(), (1_us).ps());
  EXPECT_EQ(arrivals[1].ps(), (2_us).ps());
  EXPECT_EQ(arrivals[2].ps(), (3_us).ps());
}

TEST(LinkTest, RouteBytesCountOnTheWire) {
  Simulator sim;
  LinkParams lp;
  lp.bandwidth_mbps = 160.0;
  lp.propagation = sim::Duration{0};
  lp.header_bytes = 16;
  Link link(sim, lp, "l");
  Packet p = small_packet(0);
  p.route = {1, 2, 3};  // 3 route bytes
  EXPECT_EQ(link.wire_time(p).ps(), sim::transfer_time(19, 160.0).ps());
}

TEST(LinkTest, DropProbabilityOneKillsEverything) {
  Simulator sim;
  Link link(sim, LinkParams{}, "l");
  int delivered = 0;
  link.set_deliver([&](Packet) { ++delivered; });
  link.set_drop_probability(1.0, 7);
  for (int i = 0; i < 10; ++i) link.transmit(small_packet());
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.packets_dropped(), 10u);
  EXPECT_EQ(link.packets_sent(), 10u);
}

TEST(LinkTest, DropPredicateSelective) {
  Simulator sim;
  Link link(sim, LinkParams{}, "l");
  std::vector<PacketType> delivered;
  link.set_deliver([&](Packet p) { delivered.push_back(p.type); });
  link.set_drop_predicate([](const Packet& p) { return p.type == PacketType::kAck; });

  Packet data = small_packet();
  Packet ack = small_packet();
  ack.type = PacketType::kAck;
  link.transmit(std::move(data));
  link.transmit(std::move(ack));
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], PacketType::kData);
  EXPECT_EQ(link.packets_dropped(), 1u);
}

TEST(LinkTest, DroppedPacketStillBurnsWireTime) {
  Simulator sim;
  LinkParams lp;
  lp.bandwidth_mbps = 160.0;
  lp.propagation = sim::Duration{0};
  lp.header_bytes = 0;
  Link link(sim, lp, "l");
  std::vector<SimTime> arrivals;
  link.set_deliver([&](Packet) { arrivals.push_back(sim.now()); });
  link.set_drop_predicate([](const Packet& p) { return p.tag == 1; });

  Packet doomed = small_packet(160);
  doomed.tag = 1;
  link.transmit(std::move(doomed));     // burns 1us
  link.transmit(small_packet(160));     // queues behind it
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0].ps(), (2_us).ps());
}

TEST(PacketTest, TypePredicates) {
  EXPECT_TRUE(is_barrier_payload(PacketType::kBarrierPe));
  EXPECT_TRUE(is_barrier_payload(PacketType::kBarrierGather));
  EXPECT_TRUE(is_barrier_payload(PacketType::kBarrierBcast));
  EXPECT_FALSE(is_barrier_payload(PacketType::kData));
  EXPECT_FALSE(is_barrier_payload(PacketType::kBarrierAck));
  EXPECT_TRUE(is_control(PacketType::kAck));
  EXPECT_TRUE(is_control(PacketType::kNack));
  EXPECT_TRUE(is_control(PacketType::kBarrierNack));
  EXPECT_FALSE(is_control(PacketType::kData));
}

TEST(PacketTest, DescribeMentionsTypeAndEndpoints) {
  Packet p = small_packet();
  p.src_port = 2;
  p.dst_port = 3;
  const std::string d = p.describe();
  EXPECT_NE(d.find("DATA"), std::string::npos);
  EXPECT_NE(d.find("0.2"), std::string::npos);
  EXPECT_NE(d.find("1.3"), std::string::npos);
}

}  // namespace
}  // namespace nicbar::net
