// The invariant-checker leg of sim::check: violations throw with full trace
// context, the runtime toggle suppresses them, and an intentionally-injected
// violation (the BarrierSafetyMonitor test hook) is detected end to end.
#include "sim/check.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace nicbar::sim::check {
namespace {

TEST(InvariantTest, ViolationCarriesStructuredTraceContext) {
  try {
    fail("net.link", SimTime{42'000'000}, "sent == delivered", format("link '%s': off by %d",
                                                                      "t0->sw0", 3));
    FAIL() << "fail() must throw";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.subsystem(), "net.link");
    EXPECT_EQ(v.when(), SimTime{42'000'000});
    EXPECT_EQ(v.condition(), "sent == delivered");
    EXPECT_EQ(v.detail(), "link 't0->sw0': off by 3");
    const std::string what = v.what();
    EXPECT_NE(what.find("net.link"), std::string::npos);
    EXPECT_NE(what.find("sent == delivered"), std::string::npos);
    EXPECT_NE(what.find("off by 3"), std::string::npos);
  }
}

TEST(InvariantTest, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(SimTime{1'000'000}, [] {});
  sim.run();
  try {
    sim.schedule_at(SimTime{500'000}, [] {});
    FAIL() << "scheduling into the past must violate the queue invariant";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.subsystem(), "sim.queue");
    EXPECT_EQ(v.when(), SimTime{1'000'000});
  }
  EXPECT_THROW(sim.schedule_in(Duration{-1}, [] {}), InvariantViolation);
}

TEST(InvariantTest, NegativeServiceTimeOnABusyServerThrows) {
  Simulator sim;
  BusyServer server(sim, "pci0");
  try {
    server.submit(Duration{-5});
    FAIL() << "negative service time must violate the server invariant";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.subsystem(), "sim.server");
    EXPECT_NE(v.detail().find("pci0"), std::string::npos);
    EXPECT_NE(v.detail().find("-5"), std::string::npos);
  }
}

TEST(InvariantTest, DisabledSuppressesChecksAndRestores) {
  Simulator sim;
  sim.schedule_at(SimTime{1'000'000}, [] {});
  sim.run();
  ASSERT_TRUE(enabled());
  {
    Disabled off;
    EXPECT_FALSE(enabled());
    EXPECT_NO_THROW(sim.schedule_at(SimTime{500'000}, [] {}));
  }
  EXPECT_TRUE(enabled());
  EXPECT_THROW(sim.schedule_at(SimTime{200'000}, [] {}), InvariantViolation);
}

TEST(InvariantTest, BarrierSafetyMonitorAcceptsALegalSequence) {
  BarrierSafetyMonitor mon(3);
  for (int k = 0; k < 5; ++k) {
    for (std::size_t m = 0; m < 3; ++m) mon.arrive(m, SimTime{k * 100});
    for (std::size_t m = 0; m < 3; ++m) mon.complete(m, SimTime{k * 100 + 50});
  }
  EXPECT_EQ(mon.barriers_checked(), 5u);
  EXPECT_EQ(mon.completions(2), 5u);
}

TEST(InvariantTest, InjectedCompletionBeforeArrivalIsDetectedWithContext) {
  // The intentional-violation hook: member 0 "completes" barrier 1 while
  // member 2 has never arrived. The violation must name the guilty barrier
  // and members, not just say "failed".
  BarrierSafetyMonitor mon(3);
  mon.arrive(0, SimTime{10});
  mon.arrive(1, SimTime{12});
  try {
    mon.complete(0, SimTime{99});
    FAIL() << "completion before every arrival must violate barrier safety";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.subsystem(), "coll.barrier-safety");
    EXPECT_EQ(v.when(), SimTime{99});
    EXPECT_NE(v.detail().find("member 0"), std::string::npos);
    EXPECT_NE(v.detail().find("member 2"), std::string::npos);
  }
}

TEST(InvariantTest, BarrierSafetyMonitorTracksEpochsIndependently) {
  // Member 1 may run one barrier ahead in arrivals (pipelining), but a
  // completion for epoch 2 needs *everyone's* second arrival.
  BarrierSafetyMonitor mon(2);
  mon.arrive(0, SimTime{1});
  mon.arrive(1, SimTime{1});
  mon.complete(0, SimTime{2});
  mon.complete(1, SimTime{2});
  mon.arrive(1, SimTime{3});  // member 1 enters barrier 2 early
  EXPECT_THROW(mon.complete(1, SimTime{4}), InvariantViolation);
  mon.arrive(0, SimTime{5});
  EXPECT_NO_THROW(mon.complete(1, SimTime{6}));
}

}  // namespace
}  // namespace nicbar::sim::check
