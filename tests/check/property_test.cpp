// The property/fuzz leg of sim::check, sized for the tier-1 suite (the CI
// check job and `nicbar_run check` run the full 50+ case sweep).
#include "check/property.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nicbar::sim::check {
namespace {

std::string describe(const PropertyReport& rep) {
  std::string out;
  for (const auto& f : rep.failures) {
    out += "[" + f.property + "] seed=" + std::to_string(f.case_seed) + ": " + f.detail + "\n";
  }
  return out;
}

TEST(PropertyTest, SuiteIsGreen) {
  const PropertyReport rep = run_property_suite({.seed = 1, .cases = 10});
  EXPECT_EQ(rep.properties_run, 5u);
  EXPECT_EQ(rep.fuzz_cases_run, 10u);
  EXPECT_TRUE(rep.ok()) << describe(rep);
}

TEST(PropertyTest, CaseSeedsAreStatelessAndDistinct) {
  // A failure printed by one invocation must be replayable by another, so
  // the per-case seed may depend only on (suite seed, index).
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 100; ++i) {
    const std::uint64_t s = fuzz_case_seed(7, i);
    EXPECT_EQ(s, fuzz_case_seed(7, i));
    EXPECT_NE(s, 0u);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_NE(fuzz_case_seed(7, 0), fuzz_case_seed(8, 0));
}

TEST(PropertyTest, GeneratorIsDeterministicPerSeed) {
  std::string a, b;
  const auto pa = generate_fuzz_case(0xdeadbeef, &a);
  const auto pb = generate_fuzz_case(0xdeadbeef, &b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(pa.nodes, pb.nodes);
  EXPECT_EQ(pa.reps, pb.reps);
  EXPECT_EQ(pa.spec.location, pb.spec.location);
  EXPECT_EQ(pa.spec.algorithm, pb.spec.algorithm);
  EXPECT_EQ(pa.cluster.faults.loss.size(), pb.cluster.faults.loss.size());
}

TEST(PropertyTest, GeneratorCoversFaultsAndBothLocations) {
  std::size_t faulty = 0, nic_loc = 0, gb = 0;
  const std::size_t kCases = 200;
  for (std::size_t i = 0; i < kCases; ++i) {
    const auto p = generate_fuzz_case(fuzz_case_seed(3, i));
    ASSERT_GE(p.nodes, 2u);
    ASSERT_LE(p.nodes, 10u);
    ASSERT_GE(p.spec.gb_dimension, 1u);
    ASSERT_LT(p.spec.gb_dimension, p.nodes);
    if (!p.cluster.faults.empty()) {
      ++faulty;
      if (p.spec.location == coll::Location::kNic) {
        // Lossy NIC-based cases must run a reliable barrier mode, or stalls
        // would be by-design rather than bugs.
        EXPECT_NE(p.cluster.nic.barrier_reliability, nic::BarrierReliability::kUnreliable);
      }
    }
    if (p.spec.location == coll::Location::kNic) ++nic_loc;
    if (p.spec.algorithm == nic::BarrierAlgorithm::kGatherBroadcast) ++gb;
  }
  // ~50% fault injection, ~50% location, ~50% algorithm: demand real mixing.
  EXPECT_GT(faulty, kCases / 5);
  EXPECT_LT(faulty, kCases * 4 / 5);
  EXPECT_GT(nic_loc, kCases / 5);
  EXPECT_LT(nic_loc, kCases * 4 / 5);
  EXPECT_GT(gb, kCases / 5);
  EXPECT_LT(gb, kCases * 4 / 5);
}

TEST(PropertyTest, SingleCaseReplayMatchesTheSuitePath) {
  const PropertyReport rep = run_fuzz_case(fuzz_case_seed(1, 0));
  EXPECT_EQ(rep.fuzz_cases_run, 1u);
  EXPECT_TRUE(rep.ok()) << describe(rep);
}

}  // namespace
}  // namespace nicbar::sim::check
