// The differential-oracle leg of sim::check: the independent Eq. 1-2 closed
// forms must match the simulator bit-exactly in the contention-free regime
// and within the stated per-family tolerance everywhere else.
#include "check/oracle.hpp"

#include <gtest/gtest.h>

namespace nicbar::sim::check {
namespace {

TEST(OracleTest, ContentionFreeRegimeIsPow2PairwiseExchange) {
  EXPECT_TRUE(contention_free(nic::BarrierAlgorithm::kPairwiseExchange, 2));
  EXPECT_TRUE(contention_free(nic::BarrierAlgorithm::kPairwiseExchange, 8));
  EXPECT_TRUE(contention_free(nic::BarrierAlgorithm::kPairwiseExchange, 16));
  EXPECT_FALSE(contention_free(nic::BarrierAlgorithm::kPairwiseExchange, 6));
  EXPECT_FALSE(contention_free(nic::BarrierAlgorithm::kPairwiseExchange, 1));
  EXPECT_FALSE(contention_free(nic::BarrierAlgorithm::kGatherBroadcast, 8));
}

TEST(OracleTest, TwoNodeClosedFormsMatchTheSimulatorExactly) {
  // The Fig. 2 chains, summed in per-job-truncated picoseconds. These two
  // constants also anchor the printed figures: 41.29 us and 45.52 us.
  OracleCase c;
  c.nodes = 2;
  c.location = coll::Location::kNic;
  OracleOutcome nic_pe = run_oracle_case(c);
  EXPECT_TRUE(nic_pe.exact);
  EXPECT_EQ(nic_pe.predicted.ps(), 41'291'285);
  EXPECT_EQ(nic_pe.simulated.ps(), 41'291'285);

  c.location = coll::Location::kHost;
  OracleOutcome host_pe = run_oracle_case(c);
  EXPECT_TRUE(host_pe.exact);
  EXPECT_EQ(host_pe.predicted.ps(), 45'515'527);
  EXPECT_EQ(host_pe.simulated.ps(), 45'515'527);
}

TEST(OracleTest, SteadyStateMeasurementCancelsTransients) {
  // The two-run subtraction must yield the pure per-repetition increment:
  // measuring twice gives the identical integer.
  OracleCase c;
  c.nodes = 4;
  EXPECT_EQ(measure_barrier(c).ps(), measure_barrier(c).ps());
}

TEST(OracleTest, FullSweepPassesAndPinsTheObservedError) {
  const OracleReport rep = run_differential_oracle();
  EXPECT_EQ(rep.checked, 120u);  // 2 clocks x 2 locations x 2 algorithms x n in [2,16]
  // 4 power-of-two group sizes x 2 locations x 2 clocks.
  EXPECT_EQ(rep.exact_cases, 16u);
  EXPECT_EQ(rep.failures, 0u) << [&] {
    std::string all;
    for (const auto& o : rep.outcomes) {
      if (!o.pass) all += o.label + " ";
    }
    return all;
  }();
  for (const auto& o : rep.outcomes) {
    if (o.exact) EXPECT_EQ(o.predicted.ps(), o.simulated.ps()) << o.label;
  }
  // Pin the observed worst case (currently host-pe-n15/-n13 on LANai 4.3 at
  // ~0.72) from both sides: above the tolerance means oracle failures, but a
  // silent *drop* would mean the simulator or the closed forms changed
  // behaviour — either way this test should make someone look.
  EXPECT_LE(rep.max_rel_error, kPeFoldOracleTolerance);
  EXPECT_GE(rep.max_rel_error, 0.5);
}

}  // namespace
}  // namespace nicbar::sim::check
