#include "nicbar_cli.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

namespace nicbar::cli {
namespace {

/// parse() wants main()'s argc/argv; build them from a brace list (argv[0]
/// is the program name, as in a real invocation).
std::optional<Options> parse_args(std::vector<std::string> args, std::string& error) {
  args.insert(args.begin(), "nicbar_run");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return parse(static_cast<int>(argv.size()), argv.data(), error);
}

TEST(CliTest, DefaultsMatchTheTool) {
  std::string err;
  const auto o = parse_args({}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->params.nodes, 8u);
  EXPECT_EQ(o->params.reps, 500);
  EXPECT_EQ(o->params.spec.location, coll::Location::kNic);
  EXPECT_EQ(o->params.spec.algorithm, nic::BarrierAlgorithm::kPairwiseExchange);
  EXPECT_EQ(o->params.spec.gb_dimension, 2u);
  EXPECT_EQ(o->jobs, 1u);
  EXPECT_EQ(o->seeds, 1u);
  EXPECT_FALSE(o->sweep_dim);
}

TEST(CliTest, JobsAcceptsSpaceAndZero) {
  std::string err;
  auto o = parse_args({"--jobs", "4"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->jobs, 4u);

  o = parse_args({"--jobs", "0"}, err);  // 0 = one worker per hardware thread
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->jobs, 0u);
}

TEST(CliTest, JobsRejectsGarbage) {
  std::string err;
  EXPECT_FALSE(parse_args({"--jobs", "many"}, err).has_value());
  EXPECT_NE(err.find("--jobs"), std::string::npos);
  EXPECT_FALSE(parse_args({"--jobs", "-2"}, err).has_value());
  EXPECT_FALSE(parse_args({"--jobs"}, err).has_value());
}

TEST(CliTest, SeedsParsesAndRejectsZero) {
  std::string err;
  const auto o = parse_args({"--seeds", "5", "--seed", "10"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->seeds, 5u);
  EXPECT_EQ(o->params.seed, 10u);
  EXPECT_FALSE(parse_args({"--seeds", "0"}, err).has_value());
}

TEST(CliTest, SeedsExcludesSingleRunArtifacts) {
  std::string err;
  EXPECT_FALSE(parse_args({"--seeds", "3", "--breakdown"}, err).has_value());
  EXPECT_FALSE(parse_args({"--seeds", "3", "--trace-json", "t.json"}, err).has_value());
  // --metrics-json is fine with --seeds: it routes through a shared sink.
  EXPECT_TRUE(parse_args({"--seeds", "3", "--metrics-json", "m.json"}, err).has_value()) << err;
}

TEST(CliTest, EqualsFormForFileFlags) {
  std::string err;
  const auto o = parse_args({"--metrics-json=m.json", "--trace-json=t.json"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->metrics_path, "m.json");
  EXPECT_EQ(o->trace_path, "t.json");
}

TEST(CliTest, DimZeroRequestsSweep) {
  std::string err;
  const auto o = parse_args({"--algorithm", "gb", "--dim", "0"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_TRUE(o->sweep_dim);
  EXPECT_EQ(o->params.spec.algorithm, nic::BarrierAlgorithm::kGatherBroadcast);
}

TEST(CliTest, EnumValuesParse) {
  std::string err;
  const auto o = parse_args({"--location", "host", "--algorithm", "gb", "--nic", "lanai72",
                             "--topology", "tree", "--reliability", "separate", "--rto", "fixed"},
                            err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->params.spec.location, coll::Location::kHost);
  EXPECT_EQ(o->params.spec.algorithm, nic::BarrierAlgorithm::kGatherBroadcast);
  EXPECT_EQ(o->params.cluster.nic.model, nic::lanai72().model);
  EXPECT_EQ(o->params.cluster.topology, host::Topology::kSwitchTree);
  EXPECT_EQ(o->params.cluster.nic.barrier_reliability, nic::BarrierReliability::kSeparateAcks);
  EXPECT_FALSE(o->params.cluster.nic.adaptive_rto);
}

TEST(CliTest, HostRdmaAlgorithmsParse) {
  std::string err;
  auto o = parse_args({"--algorithm", "host-dissem"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->params.spec.rdma, coll::RdmaAlgorithm::kDissemination);

  o = parse_args({"--algorithm", "host-tree", "--dim", "4"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->params.spec.rdma, coll::RdmaAlgorithm::kTreePut);
  EXPECT_EQ(o->params.spec.gb_dimension, 4u);  // --dim = tree radix
}

TEST(CliTest, HostRdmaRejectsDimSweepAndPredict) {
  std::string err;
  EXPECT_FALSE(parse_args({"--algorithm", "host-tree", "--dim", "0"}, err).has_value());
  EXPECT_NE(err.find("radix"), std::string::npos);
  EXPECT_FALSE(parse_args({"--algorithm", "host-dissem", "--predict"}, err).has_value());
}

TEST(CliTest, BadEnumValueReportsTheFlag) {
  std::string err;
  EXPECT_FALSE(parse_args({"--location", "gpu"}, err).has_value());
  EXPECT_NE(err.find("--location"), std::string::npos);
}

TEST(CliTest, UnknownFlagFails) {
  std::string err;
  EXPECT_FALSE(parse_args({"--frobnicate"}, err).has_value());
  EXPECT_NE(err.find("--frobnicate"), std::string::npos);
}

TEST(CliTest, NodesAndRepsRejectNonPositive) {
  std::string err;
  EXPECT_FALSE(parse_args({"--nodes", "0"}, err).has_value());
  EXPECT_FALSE(parse_args({"--reps", "0"}, err).has_value());
  EXPECT_FALSE(parse_args({"--nodes", "8x"}, err).has_value());
}

TEST(CliTest, WorkloadSubcommandTakesASpecPath) {
  std::string err;
  const auto o = parse_args({"workload", "spec.wl"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_TRUE(o->workload);
  EXPECT_EQ(o->workload_spec_path, "spec.wl");
  EXPECT_FALSE(o->seed_given);
}

TEST(CliTest, WorkloadComposesWithSweepAndFaultFlags) {
  std::string err;
  const auto o = parse_args({"workload", "spec.wl", "--seeds", "5", "--jobs", "4", "--seed",
                             "9", "--loss", "0.01", "--report-json", "r.json"},
                            err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_TRUE(o->workload);
  EXPECT_EQ(o->seeds, 5u);
  EXPECT_EQ(o->jobs, 4u);
  EXPECT_TRUE(o->seed_given);
  EXPECT_EQ(o->params.seed, 9u);
  EXPECT_EQ(o->report_path, "r.json");
}

TEST(CliTest, WorkloadRequiresASpecFile) {
  std::string err;
  EXPECT_FALSE(parse_args({"workload"}, err).has_value());
  EXPECT_NE(err.find("spec file"), std::string::npos);
}

TEST(CliTest, WorkloadRejectsSingleRunOnlyArtifacts) {
  std::string err;
  EXPECT_FALSE(parse_args({"workload", "spec.wl", "--breakdown"}, err).has_value());
  EXPECT_FALSE(parse_args({"workload", "spec.wl", "--predict"}, err).has_value());
  EXPECT_FALSE(parse_args({"workload", "spec.wl", "--trace-json", "t.json"}, err).has_value());
  // The shared metrics sink still works: one document per seed.
  EXPECT_TRUE(parse_args({"workload", "spec.wl", "--metrics-json", "m.json"}, err).has_value())
      << err;
}

TEST(CliTest, ReportJsonIsWorkloadOnly) {
  std::string err;
  EXPECT_FALSE(parse_args({"--report-json", "r.json"}, err).has_value());
  EXPECT_NE(err.find("--report-json"), std::string::npos);
}

TEST(CliTest, StrayPositionalFails) {
  std::string err;
  EXPECT_FALSE(parse_args({"banana"}, err).has_value());
  EXPECT_NE(err.find("banana"), std::string::npos);
  EXPECT_FALSE(parse_args({"workload", "spec.wl", "extra"}, err).has_value());
}

TEST(CliTest, CheckSubcommandParses) {
  std::string err;
  const auto o = parse_args({"check"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_TRUE(o->check);
  EXPECT_FALSE(o->workload);
  EXPECT_EQ(o->check_cases, 50u);
  EXPECT_FALSE(o->have_case_seed);
}

TEST(CliTest, CheckComposesWithCasesAndCaseSeed) {
  std::string err;
  auto o = parse_args({"check", "--cases", "120", "--seed", "7"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->check_cases, 120u);
  EXPECT_EQ(o->params.seed, 7u);

  o = parse_args({"check", "--case-seed", "12345"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_TRUE(o->have_case_seed);
  EXPECT_EQ(o->case_seed, 12345u);
}

TEST(CliTest, CheckFlagsRequireTheSubcommand) {
  std::string err;
  EXPECT_FALSE(parse_args({"--cases", "10"}, err).has_value());
  EXPECT_NE(err.find("check"), std::string::npos);
  EXPECT_FALSE(parse_args({"--case-seed", "1"}, err).has_value());
}

TEST(CliTest, CheckRejectsGarbageAndSingleRunArtifacts) {
  std::string err;
  EXPECT_FALSE(parse_args({"check", "--cases", "0"}, err).has_value());
  EXPECT_FALSE(parse_args({"check", "--cases", "lots"}, err).has_value());
  EXPECT_FALSE(parse_args({"check", "--case-seed", "soon"}, err).has_value());
  EXPECT_FALSE(parse_args({"check", "--breakdown"}, err).has_value());
  EXPECT_FALSE(parse_args({"check", "--predict"}, err).has_value());
  EXPECT_FALSE(parse_args({"check", "--seeds", "3"}, err).has_value());
  EXPECT_FALSE(parse_args({"check", "--metrics-json", "m.json"}, err).has_value());
}

TEST(CliTest, TraceMaskParsesCategoryLists) {
  std::string err;
  auto o = parse_args({"--trace-json", "t.json", "--trace-mask", "barrier,reliab"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_TRUE(o->have_trace_mask);
  EXPECT_EQ(o->trace_mask, static_cast<std::uint32_t>(sim::TraceCategory::kBarrier) |
                               static_cast<std::uint32_t>(sim::TraceCategory::kReliab));

  o = parse_args({"--trace-json=t.json", "--trace-mask=net"}, err);  // = form too
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->trace_mask, static_cast<std::uint32_t>(sim::TraceCategory::kNet));

  // Default: everything passes, not flagged as user-given.
  o = parse_args({"--trace-json", "t.json"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_FALSE(o->have_trace_mask);
  EXPECT_EQ(o->trace_mask, static_cast<std::uint32_t>(sim::TraceCategory::kAll));
}

TEST(CliTest, TraceMaskRejectsUnknownNamesWithTheAcceptedList) {
  std::string err;
  EXPECT_FALSE(parse_args({"--trace-json", "t.json", "--trace-mask", "bogus"}, err).has_value());
  EXPECT_NE(err.find("--trace-mask"), std::string::npos);
  EXPECT_NE(err.find("barrier"), std::string::npos);  // names the accepted set
  EXPECT_FALSE(parse_args({"--trace-json", "t.json", "--trace-mask", ""}, err).has_value());
  EXPECT_FALSE(parse_args({"--trace-mask"}, err).has_value());
}

TEST(CliTest, TraceMaskRequiresTraceJson) {
  std::string err;
  EXPECT_FALSE(parse_args({"--trace-mask", "barrier"}, err).has_value());
  EXPECT_NE(err.find("--trace-json"), std::string::npos);
}

TEST(CliTest, CriticalPathIsSingleRunOnly) {
  std::string err;
  const auto o = parse_args({"--nodes", "16", "--critical-path"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_TRUE(o->critical_path);
  EXPECT_FALSE(parse_args({"--critical-path", "--seeds", "3"}, err).has_value());
  EXPECT_FALSE(parse_args({"workload", "spec.wl", "--critical-path"}, err).has_value());
  EXPECT_FALSE(parse_args({"check", "--critical-path"}, err).has_value());
  // Composes with the other single-run artifacts.
  EXPECT_TRUE(
      parse_args({"--critical-path", "--breakdown", "--trace-json", "t.json"}, err).has_value())
      << err;
}

TEST(CliTest, SloReportIsWorkloadOnly) {
  std::string err;
  const auto o = parse_args({"workload", "spec.wl", "--slo-report", "slo.json"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_EQ(o->slo_report_path, "slo.json");
  EXPECT_FALSE(parse_args({"--slo-report", "slo.json"}, err).has_value());
  EXPECT_NE(err.find("--slo-report"), std::string::npos);
  EXPECT_FALSE(parse_args({"workload", "spec.wl", "--slo-report"}, err).has_value());
  // Composes with the seed sweep (one report per seed, like --report-json).
  EXPECT_TRUE(
      parse_args({"workload", "spec.wl", "--seeds", "3", "--slo-report", "s.json"}, err)
          .has_value())
      << err;
}

TEST(CliTest, CheckAndWorkloadAreMutuallyExclusive) {
  std::string err;
  // After `workload`, the next positional is the spec path — even if it
  // happens to spell "check"; no accidental double subcommand.
  const auto o = parse_args({"workload", "check"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_TRUE(o->workload);
  EXPECT_FALSE(o->check);
  EXPECT_EQ(o->workload_spec_path, "check");
  EXPECT_FALSE(parse_args({"check", "workload"}, err).has_value());
  EXPECT_FALSE(parse_args({"check", "extra"}, err).has_value());
}

TEST(CliTest, SeedsAndRtoRejectGarbageValues) {
  std::string err;
  EXPECT_FALSE(parse_args({"--seeds", "several"}, err).has_value());
  EXPECT_NE(err.find("--seeds"), std::string::npos);
  EXPECT_FALSE(parse_args({"--rto", "sometimes"}, err).has_value());
  EXPECT_NE(err.find("--rto"), std::string::npos);
}

TEST(CliTest, BurstLossParsesTriple) {
  std::string err;
  const auto o = parse_args({"--burst-loss", "0.01,0.5,0.9"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_TRUE(o->have_burst);
  EXPECT_DOUBLE_EQ(o->burst_enter, 0.01);
  EXPECT_DOUBLE_EQ(o->burst_exit, 0.5);
  EXPECT_DOUBLE_EQ(o->burst_rate, 0.9);
  EXPECT_FALSE(parse_args({"--burst-loss", "0.01,0.5"}, err).has_value());
}

TEST(CliTest, PdesWorkersParses) {
  std::string err;
  const auto o = parse_args({"--pdes-workers", "4"}, err);
  ASSERT_TRUE(o.has_value()) << err;
  EXPECT_TRUE(o->pdes_given);
  EXPECT_EQ(o->params.cluster.pdes_partitions, 4u);
  EXPECT_EQ(o->params.cluster.pdes_workers, 4u);

  // Default: serial engine, flag not given.
  const auto d = parse_args({}, err);
  ASSERT_TRUE(d.has_value()) << err;
  EXPECT_FALSE(d->pdes_given);
  EXPECT_EQ(d->params.cluster.pdes_partitions, 1u);
}

TEST(CliTest, PdesWorkersRejectsZeroAndGarbage) {
  std::string err;
  EXPECT_FALSE(parse_args({"--pdes-workers", "0"}, err).has_value());
  EXPECT_NE(err.find("--pdes-workers"), std::string::npos);
  EXPECT_FALSE(parse_args({"--pdes-workers", "lots"}, err).has_value());
  EXPECT_FALSE(parse_args({"--pdes-workers"}, err).has_value());
}

TEST(CliTest, PdesWorkersExcludesSingleLaneCollectors) {
  std::string err;
  EXPECT_FALSE(parse_args({"--pdes-workers", "4", "--breakdown"}, err).has_value());
  EXPECT_NE(err.find("--pdes-workers"), std::string::npos);
  EXPECT_FALSE(parse_args({"--pdes-workers", "4", "--trace-json", "t.json"}, err).has_value());
  // --pdes-workers 1 keeps the serial engine, so the collectors stay legal.
  EXPECT_TRUE(parse_args({"--pdes-workers", "1", "--breakdown"}, err).has_value()) << err;
  // The sharded causal tracer works under PDES.
  EXPECT_TRUE(parse_args({"--pdes-workers", "4", "--critical-path"}, err).has_value()) << err;
}

TEST(CliTest, PdesWorkersIsExperimentOnly) {
  std::string err;
  EXPECT_FALSE(parse_args({"workload", "spec.wl", "--pdes-workers", "2"}, err).has_value());
  EXPECT_NE(err.find("--pdes-workers"), std::string::npos);
  EXPECT_FALSE(parse_args({"check", "--pdes-workers", "2"}, err).has_value());
}

}  // namespace
}  // namespace nicbar::cli
