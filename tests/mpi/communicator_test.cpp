// The MPI-like layer: point-to-point matching, collectives, and the
// interplay between application traffic and NIC-resident collectives.
#include "mpi/communicator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/cluster.hpp"

namespace nicbar::mpi {
namespace {

using namespace sim::literals;

struct World {
  explicit World(std::size_t n, CommConfig cfg = {}, host::ClusterParams cp = {}) {
    cp.nodes = n;
    cluster = std::make_unique<host::Cluster>(cp);
    std::vector<gm::Endpoint> group;
    for (std::size_t i = 0; i < n; ++i) {
      group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
    }
    for (std::size_t i = 0; i < n; ++i) {
      ports.push_back(cluster->open_port(static_cast<net::NodeId>(i), 2));
      comms.push_back(std::make_unique<Communicator>(*ports.back(), group, cfg));
    }
  }
  std::unique_ptr<host::Cluster> cluster;
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<Communicator>> comms;
};

TEST(CommunicatorTest, RankAndSize) {
  World w(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(w.comms[static_cast<std::size_t>(i)]->rank(), i);
    EXPECT_EQ(w.comms[static_cast<std::size_t>(i)]->size(), 4);
  }
}

TEST(CommunicatorTest, PingPong) {
  World w(2);
  std::vector<std::uint64_t> tags;
  w.cluster->sim().spawn([](Communicator& c, std::vector<std::uint64_t>* out) -> sim::Task {
    co_await c.send(1, 128, 7);
    const Message m = co_await c.recv(1);
    out->push_back(m.tag);
  }(*w.comms[0], &tags));
  w.cluster->sim().spawn([](Communicator& c) -> sim::Task {
    const Message m = co_await c.recv(0);
    co_await c.send(0, 128, m.tag + 1);
  }(*w.comms[1]));
  w.cluster->sim().run();
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0], 8u);
}

TEST(CommunicatorTest, RecvMatchesBySourceRank) {
  // Rank 0 waits for rank 2 specifically; rank 1's message (arriving first)
  // must be queued, not mis-delivered.
  World w(3);
  std::vector<int> order;
  w.cluster->sim().spawn([](Communicator& c, std::vector<int>* out) -> sim::Task {
    Message from2 = co_await c.recv(2);
    out->push_back(from2.source);
    Message from1 = co_await c.recv(1);
    out->push_back(from1.source);
  }(*w.comms[0], &order));
  w.cluster->sim().spawn([](Communicator& c) -> sim::Task {
    co_await c.send(0, 16, 11);
  }(*w.comms[1]));
  w.cluster->sim().spawn([](sim::Simulator& sim, Communicator& c) -> sim::Task {
    co_await sim.delay(500_us);  // rank 2 sends much later
    co_await c.send(0, 16, 22);
  }(w.cluster->sim(), *w.comms[2]));
  w.cluster->sim().run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

class CommCollectives : public ::testing::TestWithParam<coll::Location> {};

TEST_P(CommCollectives, BarrierSynchronizes) {
  CommConfig cfg;
  cfg.collective_location = GetParam();
  World w(8, cfg);
  std::vector<sim::SimTime> entered(8), exited(8);
  for (std::size_t i = 0; i < 8; ++i) {
    w.cluster->sim().spawn([](sim::Simulator& sim, Communicator& c, sim::Duration d,
                              sim::SimTime* in, sim::SimTime* out) -> sim::Task {
      co_await sim.delay(d);
      *in = sim.now();
      co_await c.barrier();
      *out = sim.now();
    }(w.cluster->sim(), *w.comms[i], sim::microseconds(53.0 * static_cast<double>(i)),
      &entered[i], &exited[i]));
  }
  w.cluster->sim().run();
  sim::SimTime last_in{0};
  for (auto t : entered) {
    if (t > last_in) last_in = t;
  }
  for (std::size_t i = 0; i < 8; ++i) EXPECT_GE(exited[i].ps(), last_in.ps());
}

TEST_P(CommCollectives, AllreduceSum) {
  CommConfig cfg;
  cfg.collective_location = GetParam();
  World w(8, cfg);
  std::vector<std::int64_t> results(8, -1);
  for (std::size_t i = 0; i < 8; ++i) {
    w.cluster->sim().spawn([](Communicator& c, std::int64_t v, std::int64_t* out) -> sim::Task {
      *out = co_await c.allreduce(v, nic::ReduceOp::kSum);
    }(*w.comms[i], static_cast<std::int64_t>(i + 1), &results[i]));
  }
  w.cluster->sim().run();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(results[i], 36);
}

TEST_P(CommCollectives, AllreduceMax) {
  CommConfig cfg;
  cfg.collective_location = GetParam();
  World w(4, cfg);
  std::vector<std::int64_t> results(4, -1);
  const std::int64_t vals[] = {3, 99, -5, 40};
  for (std::size_t i = 0; i < 4; ++i) {
    w.cluster->sim().spawn([](Communicator& c, std::int64_t v, std::int64_t* out) -> sim::Task {
      *out = co_await c.allreduce(v, nic::ReduceOp::kMax);
    }(*w.comms[i], vals[i], &results[i]));
  }
  w.cluster->sim().run();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(results[i], 99);
}

TEST_P(CommCollectives, BcastFromRoot) {
  CommConfig cfg;
  cfg.collective_location = GetParam();
  World w(8, cfg);
  std::vector<std::int64_t> results(8, -1);
  for (std::size_t i = 0; i < 8; ++i) {
    w.cluster->sim().spawn([](Communicator& c, std::int64_t* out) -> sim::Task {
      // Only rank 0's value matters.
      *out = co_await c.bcast(c.rank() == 0 ? 0x5A5A : 0x1111);
    }(*w.comms[i], &results[i]));
  }
  w.cluster->sim().run();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(results[i], 0x5A5A);
}

INSTANTIATE_TEST_SUITE_P(Locations, CommCollectives,
                         ::testing::Values(coll::Location::kHost, coll::Location::kNic),
                         [](const auto& info) {
                           return info.param == coll::Location::kHost ? "Host" : "Nic";
                         });

TEST(CommunicatorTest, DataInFlightDuringNicBarrierIsNotLost) {
  // Rank 1 sends a message, then enters the barrier. Rank 0 enters the
  // barrier immediately and only afterwards posts its recv: the message
  // lands while rank 0 is blocked inside barrier() and must be queued via
  // the event-sink plumbing.
  World w(2);
  std::vector<std::uint64_t> tags;
  w.cluster->sim().spawn([](Communicator& c, std::vector<std::uint64_t>* out) -> sim::Task {
    co_await c.barrier();
    const Message m = co_await c.recv(1);
    out->push_back(m.tag);
  }(*w.comms[0], &tags));
  w.cluster->sim().spawn([](Communicator& c) -> sim::Task {
    co_await c.send(0, 32, 77);
    co_await c.barrier();
  }(*w.comms[1]));
  w.cluster->sim().run();
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0], 77u);
}

TEST(CommunicatorTest, MixedCollectivesAndTraffic) {
  World w(4);
  std::vector<std::int64_t> sums(4, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    w.cluster->sim().spawn([](Communicator& c, std::int64_t* out) -> sim::Task {
      for (int round = 0; round < 3; ++round) {
        // Ring shift: send to right neighbour, recv from left.
        const int right = (c.rank() + 1) % c.size();
        const int left = (c.rank() + c.size() - 1) % c.size();
        co_await c.send(right, 64, static_cast<std::uint64_t>(c.rank()));
        const Message m = co_await c.recv(left);
        co_await c.barrier();
        *out += co_await c.allreduce(static_cast<std::int64_t>(m.tag), nic::ReduceOp::kSum);
      }
    }(*w.comms[i], &sums[i]));
  }
  w.cluster->sim().run();
  // Each round allreduces the sum of all ranks (0+1+2+3=6); 3 rounds = 18.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(sums[i], 18);
}

TEST(CommunicatorTest, NicCollectivesBeatHostUnderMpiOverhead) {
  // The paper's §1/§2.2 claim, end-to-end at the MPI level.
  auto run = [](coll::Location loc) {
    CommConfig cfg;
    cfg.collective_location = loc;
    World w(8, cfg);
    for (std::size_t i = 0; i < 8; ++i) {
      w.cluster->sim().spawn([](Communicator& c) -> sim::Task {
        for (int k = 0; k < 10; ++k) co_await c.barrier();
      }(*w.comms[i]));
    }
    w.cluster->sim().run();
    return w.cluster->sim().now().us();
  };
  EXPECT_LT(run(coll::Location::kNic), run(coll::Location::kHost));
}

TEST(CommunicatorTest, RejectsForeignEndpoint) {
  World w(2);
  auto stranger = w.cluster->open_port(0, 5);
  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};
  EXPECT_THROW(Communicator c(*stranger, group), std::invalid_argument);
}

TEST(CommunicatorTest, BadRankArguments) {
  World w(2);
  EXPECT_THROW((void)w.comms[0]->send(5, 8), std::out_of_range);
  EXPECT_THROW((void)w.comms[0]->recv(-1), std::out_of_range);
}

}  // namespace
}  // namespace nicbar::mpi
