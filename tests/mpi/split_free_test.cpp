// MPI_Comm_split / MPI_Comm_free over managed barrier groups: child
// communicators get their own dynamically created group (NIC slot admission
// included), barriers on them work, and free() returns the slots.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/cluster.hpp"
#include "mpi/communicator.hpp"

namespace nicbar::mpi {
namespace {

using namespace sim::literals;
using coll::BarrierStatus;

struct World {
  explicit World(std::size_t n, host::ClusterParams cp = {}) {
    cp.nodes = n;
    cluster = std::make_unique<host::Cluster>(cp);
    std::vector<gm::Endpoint> group;
    for (std::size_t i = 0; i < n; ++i) {
      group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
    }
    CommConfig cfg;
    for (std::size_t i = 0; i < n; ++i) {
      ports.push_back(cluster->open_port(static_cast<net::NodeId>(i), 2));
      comms.push_back(std::make_unique<Communicator>(*ports.back(), group, cfg));
    }
  }
  std::unique_ptr<host::Cluster> cluster;
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<Communicator>> comms;
};

TEST(SplitFreeTest, SplitByParityBarriersAndFrees) {
  World w(4);
  struct Out {
    int child_rank = -1;
    int child_size = 0;
    BarrierStatus barrier = BarrierStatus::kPeerDead;
    BarrierStatus freed = BarrierStatus::kPeerDead;
  };
  std::vector<Out> out(4);
  for (int r = 0; r < 4; ++r) {
    w.cluster->sim().spawn([](Communicator& c, int rank, Out* o) -> sim::Task {
      std::unique_ptr<Communicator> child = co_await c.split(rank % 2, rank);
      EXPECT_NE(child, nullptr);
      if (!child) co_return;
      EXPECT_FALSE(child->failed());
      o->child_rank = child->rank();
      o->child_size = child->size();
      o->barrier = co_await child->barrier();
      o->freed = co_await child->free();
    }(*w.comms[static_cast<std::size_t>(r)], r, &out[static_cast<std::size_t>(r)]));
  }
  w.cluster->sim().run();
  for (int r = 0; r < 4; ++r) {
    const Out& o = out[static_cast<std::size_t>(r)];
    EXPECT_EQ(o.child_size, 2) << "rank " << r;
    EXPECT_EQ(o.child_rank, r / 2) << "rank " << r;  // keys ascend within a color
    EXPECT_EQ(o.barrier, BarrierStatus::kOk) << "rank " << r;
    EXPECT_EQ(o.freed, BarrierStatus::kOk) << "rank " << r;
  }
  for (net::NodeId n = 0; n < 4; ++n) {
    EXPECT_GT(w.cluster->nic(n).slots().stats().allocations, 0u) << "nic " << n;
    EXPECT_EQ(w.cluster->nic(n).slots().in_use(), 0) << "free() must return slots, nic " << n;
  }
}

TEST(SplitFreeTest, KeyControlsRankOrder) {
  // One color, keys descending with world rank: child ranks reverse.
  World w(3);
  std::vector<int> child_rank(3, -1);
  for (int r = 0; r < 3; ++r) {
    w.cluster->sim().spawn([](Communicator& c, int rank, int* out) -> sim::Task {
      std::unique_ptr<Communicator> child = co_await c.split(0, 100 - rank);
      EXPECT_NE(child, nullptr);
      if (!child) co_return;
      *out = child->rank();
      (void)co_await child->free();
    }(*w.comms[static_cast<std::size_t>(r)], r, &child_rank[static_cast<std::size_t>(r)]));
  }
  w.cluster->sim().run();
  EXPECT_EQ(child_rank, (std::vector<int>{2, 1, 0}));
}

TEST(SplitFreeTest, NegativeColorGetsNoCommunicator) {
  // MPI_UNDEFINED: rank 2 opts out but still participates in the collective
  // split call; the others form a two-rank child that works.
  World w(3);
  std::vector<int> sizes(3, -1);
  std::vector<BarrierStatus> st(3, BarrierStatus::kPeerDead);
  for (int r = 0; r < 3; ++r) {
    w.cluster->sim().spawn([](Communicator& c, int rank, int* size, BarrierStatus* s)
                               -> sim::Task {
      std::unique_ptr<Communicator> child = co_await c.split(rank == 2 ? -1 : 0, rank);
      if (rank == 2) {
        EXPECT_EQ(child, nullptr);
        co_return;
      }
      EXPECT_NE(child, nullptr);
      if (!child) co_return;
      *size = child->size();
      *s = co_await child->barrier();
      (void)co_await child->free();
    }(*w.comms[static_cast<std::size_t>(r)], r, &sizes[static_cast<std::size_t>(r)],
      &st[static_cast<std::size_t>(r)]));
  }
  w.cluster->sim().run();
  EXPECT_EQ(sizes[0], 2);
  EXPECT_EQ(sizes[1], 2);
  EXPECT_EQ(st[0], BarrierStatus::kOk);
  EXPECT_EQ(st[1], BarrierStatus::kOk);
}

TEST(SplitFreeTest, SequentialSplitsCoexist) {
  // Two live children per rank at once (distinct generated group ids);
  // barriers on both interleave through the shared world event stream.
  World w(4);
  std::vector<int> ok(4, 0);
  for (int r = 0; r < 4; ++r) {
    w.cluster->sim().spawn([](Communicator& c, int rank, int* out) -> sim::Task {
      std::unique_ptr<Communicator> a = co_await c.split(0, rank);       // all four
      std::unique_ptr<Communicator> b = co_await c.split(rank / 2, rank);  // pairs
      EXPECT_NE(a, nullptr);
      EXPECT_NE(b, nullptr);
      if (!a || !b) co_return;
      int good = 0;
      good += (co_await a->barrier()) == BarrierStatus::kOk;
      good += (co_await b->barrier()) == BarrierStatus::kOk;
      good += (co_await a->barrier()) == BarrierStatus::kOk;
      good += (co_await b->free()) == BarrierStatus::kOk;
      good += (co_await a->free()) == BarrierStatus::kOk;
      *out = good;
    }(*w.comms[static_cast<std::size_t>(r)], r, &ok[static_cast<std::size_t>(r)]));
  }
  w.cluster->sim().run();
  for (int r = 0; r < 4; ++r) EXPECT_EQ(ok[static_cast<std::size_t>(r)], 5) << "rank " << r;
  for (net::NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(w.cluster->nic(n).slots().in_use(), 0) << "nic " << n;
  }
}

TEST(SplitFreeTest, SlotExhaustionDegradesChildBarriers) {
  // With zero NIC slots the child still forms — barriers run host-driven
  // and report kOkDegraded, which is a success, not a failure.
  host::ClusterParams cp;
  cp.nic.barrier_slots = 0;
  World w(2, cp);
  std::vector<BarrierStatus> st(2, BarrierStatus::kPeerDead);
  for (int r = 0; r < 2; ++r) {
    w.cluster->sim().spawn([](Communicator& c, int rank, BarrierStatus* out) -> sim::Task {
      std::unique_ptr<Communicator> child = co_await c.split(0, rank);
      EXPECT_NE(child, nullptr);
      if (!child) co_return;
      EXPECT_FALSE(child->failed());
      *out = co_await child->barrier();
      (void)co_await child->free();
    }(*w.comms[static_cast<std::size_t>(r)], r, &st[static_cast<std::size_t>(r)]));
  }
  w.cluster->sim().run();
  EXPECT_EQ(st[0], BarrierStatus::kOkDegraded);
  EXPECT_EQ(st[1], BarrierStatus::kOkDegraded);
  EXPECT_GT(w.cluster->nic(0).slots().stats().rejections, 0u);
}

TEST(SplitFreeTest, PointToPointStillWorksAcrossSplit) {
  // World-level sends interleaved with child barriers: the event funnel must
  // route app traffic to the world and group traffic to the child.
  World w(2);
  std::vector<std::uint64_t> tags;
  w.cluster->sim().spawn([](Communicator& c, std::vector<std::uint64_t>* out) -> sim::Task {
    std::unique_ptr<Communicator> child = co_await c.split(0, 0);
    co_await c.send(1, 64, 7);
    (void)co_await child->barrier();
    const Message m = co_await c.recv(1);
    out->push_back(m.tag);
    (void)co_await child->free();
  }(*w.comms[0], &tags));
  w.cluster->sim().spawn([](Communicator& c) -> sim::Task {
    std::unique_ptr<Communicator> child = co_await c.split(0, 1);
    const Message m = co_await c.recv(0);
    (void)co_await child->barrier();
    co_await c.send(0, 64, m.tag + 1);
    (void)co_await child->free();
  }(*w.comms[1]));
  w.cluster->sim().run();
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0], 8u);
}

}  // namespace
}  // namespace nicbar::mpi
