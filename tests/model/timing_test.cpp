// The paper's Equations 1-3 and the phase derivation.
#include "model/timing.hpp"

#include <gtest/gtest.h>

namespace nicbar::model {
namespace {

PhaseTimes sample_phases() {
  // The paper's §1 ballpark: ~30us one-way, ~120-240us for a 16-node barrier.
  PhaseTimes t;
  t.send_us = 5.0;
  t.sdma_us = 8.5;
  t.network_us = 1.0;
  t.recv_us = 14.0;
  t.recv_nic_pe_us = 17.0;
  t.recv_nic_gb_us = 20.0;
  t.rdma_us = 6.0;
  t.hrecv_us = 4.0;
  return t;
}

TEST(Log2CeilTest, Values) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(8), 3u);
  EXPECT_EQ(log2_ceil(9), 4u);
  EXPECT_EQ(log2_ceil(16), 4u);
  EXPECT_EQ(log2_ceil(1024), 10u);
}

TEST(EquationsTest, Eq1IsLinearInRounds) {
  const PhaseTimes t = sample_phases();
  const double msg = t.host_message_us();
  EXPECT_DOUBLE_EQ(host_barrier_us(t, 2), 1.0 * msg);
  EXPECT_DOUBLE_EQ(host_barrier_us(t, 4), 2.0 * msg);
  EXPECT_DOUBLE_EQ(host_barrier_us(t, 16), 4.0 * msg);
}

TEST(EquationsTest, Eq2OnlyNetworkAndRecvScale) {
  const PhaseTimes t = sample_phases();
  const double fixed = t.send_us + t.rdma_us + t.hrecv_us;
  EXPECT_DOUBLE_EQ(nic_barrier_us(t, 2), fixed + 1.0 * (t.network_us + t.recv_nic_pe_us));
  EXPECT_DOUBLE_EQ(nic_barrier_us(t, 16), fixed + 4.0 * (t.network_us + t.recv_nic_pe_us));
}

TEST(EquationsTest, PaperBallpark) {
  // With the §1 numbers a 16-node host barrier costs 120-240us.
  const PhaseTimes t = sample_phases();
  const double host16 = host_barrier_us(t, 16);
  EXPECT_GT(host16, 120.0);
  EXPECT_LT(host16, 240.0);
  EXPECT_GT(improvement_factor(t, 16), 1.0);
}

TEST(EquationsTest, ImprovementGrowsWithNodes) {
  const PhaseTimes t = sample_phases();
  double prev = 0;
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const double f = improvement_factor(t, n);
    EXPECT_GT(f, prev) << "n=" << n;
    prev = f;
  }
}

TEST(EquationsTest, ImprovementGrowsWithSendOverhead) {
  // Eq. 3 prediction: adding a software layer (bigger Send/HRecv) raises it.
  PhaseTimes t = sample_phases();
  const double base = improvement_factor(t, 16);
  t.send_us += 10.0;
  t.hrecv_us += 10.0;
  EXPECT_GT(improvement_factor(t, 16), base);
}

TEST(EquationsTest, ImprovementBoundedByRatioLimit) {
  // As N -> inf, improvement -> (host msg)/(network + recv_nic).
  const PhaseTimes t = sample_phases();
  const double limit = t.host_message_us() / (t.network_us + t.recv_nic_pe_us);
  EXPECT_LT(improvement_factor(t, 1u << 20), limit);
  EXPECT_GT(improvement_factor(t, 1u << 20), 0.95 * limit);
}

TEST(DerivePhasesTest, Lanai72HalvesOnlyNicCycles) {
  const gm::GmConfig gmc;
  const net::LinkParams link;
  const net::SwitchParams sw;
  const PhaseTimes slow = derive_phases(nic::lanai43(), gmc, link, sw);
  const PhaseTimes fast = derive_phases(nic::lanai72(), gmc, link, sw);
  // Pure NIC-cycle phases halve.
  EXPECT_NEAR(fast.recv_us, slow.recv_us / 2.0, 0.01);
  // Host-side cost is unchanged.
  EXPECT_DOUBLE_EQ(fast.hrecv_us, slow.hrecv_us);
  // Send = host + detect-cycles: strictly between unchanged and halved.
  EXPECT_LT(fast.send_us, slow.send_us);
  EXPECT_GT(fast.send_us, slow.send_us / 2.0);
}

TEST(DerivePhasesTest, LayerOverheadEntersSendAndHrecv) {
  gm::GmConfig gmc;
  const net::LinkParams link;
  const net::SwitchParams sw;
  const PhaseTimes base = derive_phases(nic::lanai43(), gmc, link, sw);
  gmc.layer_overhead = sim::microseconds(7.0);
  const PhaseTimes layered = derive_phases(nic::lanai43(), gmc, link, sw);
  EXPECT_NEAR(layered.send_us - base.send_us, 7.0, 1e-9);
  EXPECT_NEAR(layered.hrecv_us - base.hrecv_us, 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(layered.recv_us, base.recv_us);
}

TEST(DerivePhasesTest, PayloadSizeEntersSdmaRdmaAndNetwork) {
  const gm::GmConfig gmc;
  const net::LinkParams link;
  const net::SwitchParams sw;
  const PhaseTimes small = derive_phases(nic::lanai43(), gmc, link, sw, 8);
  const PhaseTimes big = derive_phases(nic::lanai43(), gmc, link, sw, 64 * 1024);
  EXPECT_GT(big.sdma_us, small.sdma_us);
  EXPECT_GT(big.rdma_us, small.rdma_us);
  EXPECT_GT(big.network_us, small.network_us);
  EXPECT_DOUBLE_EQ(big.recv_us, small.recv_us);
}

TEST(DerivePhasesTest, PredictionTracksSimulationWithin10Percent) {
  // Cross-check: Eq. 1/2 against the actual simulator (see the fig2 bench
  // for the full table) — the derivation must stay honest.
  const gm::GmConfig gmc;
  const net::LinkParams link;
  const net::SwitchParams sw;
  const PhaseTimes t = derive_phases(nic::lanai43(), gmc, link, sw);
  // From the calibrated simulator (bench/fig5a): 16-node host-PE ~182us,
  // NIC-PE ~101us.
  EXPECT_NEAR(host_barrier_us(t, 16), 182.0, 18.0);
  EXPECT_NEAR(nic_barrier_us(t, 16), 101.0, 10.0);
}

}  // namespace
}  // namespace nicbar::model
