// GM host-library API tests: port lifecycle, event polling, epochs, costs.
#include "gm/port.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

namespace nicbar::gm {
namespace {

using namespace sim::literals;

host::ClusterParams two_nodes() {
  host::ClusterParams p;
  p.nodes = 2;
  return p;
}

TEST(PortTest, OpenCloseLifecycle) {
  host::Cluster cluster(two_nodes());
  auto p = cluster.make_port(0, 2);
  EXPECT_FALSE(p->is_open());
  EXPECT_FALSE(cluster.nic(0).is_port_open(2));
  p->open();
  EXPECT_TRUE(p->is_open());
  EXPECT_TRUE(cluster.nic(0).is_port_open(2));
  p->close();
  EXPECT_FALSE(p->is_open());
  EXPECT_FALSE(cluster.nic(0).is_port_open(2));
}

TEST(PortTest, DoubleOpenThrows) {
  host::Cluster cluster(two_nodes());
  auto p = cluster.open_port(0, 2);
  EXPECT_THROW(p->open(), std::logic_error);
}

TEST(PortTest, DoubleCloseIsIdempotent) {
  host::Cluster cluster(two_nodes());
  auto p = cluster.open_port(0, 2);
  p->close();
  p->close();  // no throw
  EXPECT_FALSE(p->is_open());
}

TEST(PortTest, DestructorClosesNicPort) {
  host::Cluster cluster(two_nodes());
  {
    auto p = cluster.open_port(0, 2);
    EXPECT_TRUE(cluster.nic(0).is_port_open(2));
  }
  EXPECT_FALSE(cluster.nic(0).is_port_open(2));
}

TEST(PortTest, EndpointIdentity) {
  host::Cluster cluster(two_nodes());
  auto p = cluster.open_port(1, 5);
  EXPECT_EQ(p->node(), 1);
  EXPECT_EQ(p->id(), 5);
  EXPECT_EQ(p->endpoint(), (Endpoint{1, 5}));
}

TEST(PortTest, EightPortsPerNic) {
  // GM 1.2.3 allows eight ports per NIC; a ninth must fail.
  host::Cluster cluster(two_nodes());
  std::vector<std::unique_ptr<Port>> ports;
  for (nic::PortId i = 0; i < 8; ++i) ports.push_back(cluster.open_port(0, i));
  EXPECT_THROW((void)cluster.open_port(0, 8), std::out_of_range);
}

TEST(PortTest, SendChargesHostTime) {
  host::Cluster cluster(two_nodes());
  auto p = cluster.open_port(0, 2);
  sim::SimTime after{};
  cluster.sim().spawn([](sim::Simulator& sim, Port& port, sim::SimTime* out) -> sim::Task {
    co_await port.send(Endpoint{1, 2}, 64);
    *out = sim.now();
  }(cluster.sim(), *p, &after));
  cluster.sim().run(sim::SimTime{0} + 1_ms);
  EXPECT_EQ(after.ps(), p->config().host_send_overhead.ps());
}

TEST(PortTest, LayerOverheadAddsToEveryCall) {
  host::ClusterParams cp = two_nodes();
  cp.gm.layer_overhead = 10_us;
  host::Cluster cluster(cp);
  auto p = cluster.open_port(0, 2);
  sim::SimTime after{};
  cluster.sim().spawn([](sim::Simulator& sim, Port& port, sim::SimTime* out) -> sim::Task {
    co_await port.send(Endpoint{1, 2}, 64);
    *out = sim.now();
  }(cluster.sim(), *p, &after));
  cluster.sim().run(sim::SimTime{0} + 1_ms);
  EXPECT_EQ(after.ps(), (p->config().host_send_overhead + 10_us).ps());
}

TEST(PortTest, PollReturnsEmptyWhenIdle) {
  host::Cluster cluster(two_nodes());
  auto p = cluster.open_port(0, 2);
  bool empty = false;
  cluster.sim().spawn([](Port& port, bool* out) -> sim::Task {
    std::optional<GmEvent> ev = co_await port.poll();
    *out = !ev.has_value();
  }(*p, &empty));
  cluster.sim().run();
  EXPECT_TRUE(empty);
}

TEST(PortTest, PollSeesDeliveredEvent) {
  host::Cluster cluster(two_nodes());
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  bool got = false;
  cluster.sim().spawn([](Port& port) -> sim::Task {
    co_await port.send(Endpoint{1, 2}, 16, 7);
  }(*p0));
  cluster.sim().spawn([](sim::Simulator& sim, Port& port, bool* out) -> sim::Task {
    co_await port.provide_receive_buffer(16);
    co_await sim.delay(1_ms);  // let the message land
    std::optional<GmEvent> ev = co_await port.poll();
    *out = ev.has_value() && ev->type == GmEventType::kRecv && ev->tag == 7;
  }(cluster.sim(), *p1, &got));
  cluster.sim().run();
  EXPECT_TRUE(got);
}

TEST(PortTest, BarrierEpochsIncrement) {
  host::Cluster cluster(two_nodes());
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  std::vector<std::uint32_t> epochs;
  auto barrier_loop = [](Port& port, Endpoint peer, std::vector<std::uint32_t>* out,
                         int reps) -> sim::Task {
    for (int i = 0; i < reps; ++i) {
      nic::BarrierToken tok;
      tok.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
      tok.peers = {peer};
      co_await port.provide_barrier_buffer();
      const gm::Epoch e = co_await port.barrier_send(std::move(tok));
      if (out != nullptr) out->push_back(e.value());
      (void)co_await port.receive();
    }
  };
  cluster.sim().spawn(barrier_loop(*p0, Endpoint{1, 2}, &epochs, 4));
  cluster.sim().spawn(barrier_loop(*p1, Endpoint{0, 2}, nullptr, 4));
  cluster.sim().run();
  EXPECT_EQ(epochs, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(p0->barrier_epoch(), 4u);
}

TEST(PortTest, ComputeOccupiesCpu) {
  host::Cluster cluster(two_nodes());
  auto p = cluster.open_port(0, 2);
  sim::SimTime end{};
  cluster.sim().spawn([](sim::Simulator& sim, Port& port, sim::SimTime* out) -> sim::Task {
    co_await port.compute(250_us);
    *out = sim.now();
  }(cluster.sim(), *p, &end));
  cluster.sim().run();
  EXPECT_EQ(end.ps(), (250_us).ps());
}

TEST(PortTest, StaleCompletionCounterAccumulates) {
  host::Cluster cluster(two_nodes());
  auto p = cluster.open_port(0, 2);
  EXPECT_EQ(p->stale_completions(), 0u);
  p->count_stale_completion();
  p->count_stale_completion();
  EXPECT_EQ(p->stale_completions(), 2u);
}

TEST(PortTest, InjectedStaleEpochCompletionIsFilteredNotDelivered) {
  // A completion from an earlier, aborted epoch surfaces after a new barrier
  // starts (the NIC delivered it late). The epoch-aware consumer
  // (coll::BarrierMember) must filter it — count it on the port, keep
  // waiting — and still finish on the genuine completion.
  host::Cluster cluster(two_nodes());
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  // The upcoming barrier will run as epoch 0; epoch 99 is stale by construction.
  nic::GmEvent stale;
  stale.type = nic::GmEventType::kBarrierComplete;
  stale.barrier_epoch = 99;
  cluster.nic(0).inject_event(2, stale);

  std::vector<gm::Endpoint> group{Endpoint{0, 2}, Endpoint{1, 2}};
  coll::BarrierSpec spec;
  spec.location = coll::Location::kNic;
  std::vector<coll::BarrierStatus> st(2, coll::BarrierStatus::kPeerDead);
  coll::BarrierMember m0(*p0, group, spec);
  coll::BarrierMember m1(*p1, group, spec);
  cluster.sim().spawn([](coll::BarrierMember& m, coll::BarrierStatus* out) -> sim::Task {
    *out = co_await m.run();
  }(m0, &st[0]));
  cluster.sim().spawn([](coll::BarrierMember& m, coll::BarrierStatus* out) -> sim::Task {
    *out = co_await m.run();
  }(m1, &st[1]));
  cluster.sim().run();
  EXPECT_EQ(st[0], coll::BarrierStatus::kOk);
  EXPECT_EQ(st[1], coll::BarrierStatus::kOk);
  EXPECT_EQ(p0->stale_completions(), 1u) << "the epoch-99 ghost was filtered";
  EXPECT_EQ(p1->stale_completions(), 0u);
}

}  // namespace
}  // namespace nicbar::gm
