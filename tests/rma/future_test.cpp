// rma::future / promise / when_all semantics. The layer is scheduler-free:
// most of these tests run with no Simulator at all; the await tests spin one
// up only to host the coroutine frames.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rma/future.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace nicbar {
namespace {

using coll::Status;
using rma::future;
using rma::promise;
using rma::when_all;

TEST(RmaFuture, StartsUnsettledAndSettlesWithValue) {
  promise<std::int64_t> p;
  future<std::int64_t> f = p.get_future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.ready());
  p.set_value(42);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.value(), 42);
  EXPECT_EQ(f.status(), Status::kOk);
}

TEST(RmaFuture, DefaultConstructedIsInvalid) {
  future<std::int64_t> f;
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(f.ready());
}

TEST(RmaFuture, FirstSettleWins) {
  promise<std::int64_t> p;
  future<std::int64_t> f = p.get_future();
  p.set_value(7);
  p.set_error(Status::kDeadline);  // ignored: already settled
  EXPECT_EQ(f.value(), 7);
  EXPECT_EQ(f.status(), Status::kOk);

  promise<std::int64_t> q;
  future<std::int64_t> g = q.get_future();
  q.set_error(Status::kPeerDead);
  q.set_value(9);  // ignored
  EXPECT_EQ(g.status(), Status::kPeerDead);
  EXPECT_EQ(g.value(), 0);  // error value is T{}
}

TEST(RmaFuture, CopiesShareState) {
  promise<std::int64_t> p;
  future<std::int64_t> a = p.get_future();
  future<std::int64_t> b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  p.set_value(5);
  EXPECT_TRUE(a.ready());
  EXPECT_TRUE(b.ready());
  EXPECT_EQ(b.value(), 5);
}

TEST(RmaFuture, ThenRunsAfterSettle) {
  promise<std::int64_t> p;
  future<std::int64_t> doubled = p.get_future().then([](const std::int64_t& v) { return 2 * v; });
  EXPECT_FALSE(doubled.ready());
  p.set_value(21);
  ASSERT_TRUE(doubled.ready());
  EXPECT_EQ(doubled.value(), 42);
}

TEST(RmaFuture, ThenOnReadyFutureRunsInline) {
  promise<std::int64_t> p;
  p.set_value(10);
  future<std::int64_t> f = p.get_future().then([](const std::int64_t& v) { return v + 1; });
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.value(), 11);
}

TEST(RmaFuture, ThenPropagatesErrorWithoutRunning) {
  promise<std::int64_t> p;
  bool ran = false;
  future<std::int64_t> f = p.get_future().then([&ran](const std::int64_t& v) {
    ran = true;
    return v;
  });
  p.set_error(Status::kPeerDead);
  ASSERT_TRUE(f.ready());
  EXPECT_FALSE(ran);
  EXPECT_EQ(f.status(), Status::kPeerDead);
  EXPECT_EQ(f.value(), 0);
}

TEST(RmaFuture, ThenChainsAcrossTypes) {
  promise<std::int64_t> p;
  future<Status> f = p.get_future().then([](const std::int64_t&) { return Status::kOk; });
  p.set_value(1);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.value(), Status::kOk);
}

TEST(RmaWhenAll, CollectsValuesInIndexOrder) {
  std::vector<promise<std::int64_t>> ps(3);
  std::vector<future<std::int64_t>> fs;
  for (auto& p : ps) fs.push_back(p.get_future());
  future<std::vector<std::int64_t>> all = when_all(fs);
  // Settle out of order: values must still land by index.
  ps[2].set_value(30);
  EXPECT_FALSE(all.ready());
  ps[0].set_value(10);
  ps[1].set_value(20);
  ASSERT_TRUE(all.ready());
  EXPECT_EQ(all.status(), Status::kOk);
  EXPECT_EQ(all.value(), (std::vector<std::int64_t>{10, 20, 30}));
}

TEST(RmaWhenAll, FirstErrorByIndexWinsRegardlessOfSettleOrder) {
  std::vector<promise<std::int64_t>> ps(3);
  std::vector<future<std::int64_t>> fs;
  for (auto& p : ps) fs.push_back(p.get_future());
  future<std::vector<std::int64_t>> all = when_all(fs);
  // Index 2 fails first in time with kDeadline, index 1 later with
  // kPeerDead; index order is the deterministic tiebreak, so kPeerDead wins.
  ps[2].set_error(Status::kDeadline);
  ps[0].set_value(1);
  ps[1].set_error(Status::kPeerDead);
  ASSERT_TRUE(all.ready());
  EXPECT_EQ(all.status(), Status::kPeerDead);
  // Failed slots carry T{}; successful slots their value.
  EXPECT_EQ(all.value(), (std::vector<std::int64_t>{1, 0, 0}));
}

TEST(RmaWhenAll, EmptyBatchIsImmediatelyReady) {
  future<std::vector<std::int64_t>> all = when_all(std::vector<future<std::int64_t>>{});
  ASSERT_TRUE(all.ready());
  EXPECT_EQ(all.status(), Status::kOk);
  EXPECT_TRUE(all.value().empty());
}

sim::Task await_future(future<std::int64_t> f, std::int64_t* out, sim::SimTime* when,
                       sim::Simulator& sim) {
  *out = co_await f;
  *when = sim.now();
}

TEST(RmaFuture, AwaitSuspendsUntilSettled) {
  sim::Simulator sim;
  promise<std::int64_t> p;
  std::int64_t got = -1;
  sim::SimTime when{0};
  sim.spawn(await_future(p.get_future(), &got, &when, sim));
  sim.schedule_at(sim::SimTime{1000}, [p] { p.set_value(99); });
  sim.run();
  EXPECT_EQ(got, 99);
  EXPECT_EQ(when.ps(), 1000);
}

TEST(RmaFuture, AwaitReadyFutureResumesImmediately) {
  sim::Simulator sim;
  promise<std::int64_t> p;
  p.set_value(3);
  std::int64_t got = -1;
  sim::SimTime when{0};
  sim.spawn(await_future(p.get_future(), &got, &when, sim));
  sim.run();
  EXPECT_EQ(got, 3);
  EXPECT_EQ(when.ps(), 0);
}

sim::Task await_all(std::vector<future<std::int64_t>> fs, std::vector<std::int64_t>* out,
                    Status* st) {
  future<std::vector<std::int64_t>> all = when_all(std::move(fs));
  *out = co_await all;
  *st = all.status();
}

TEST(RmaWhenAll, AwaitableFromCoroutine) {
  sim::Simulator sim;
  std::vector<promise<std::int64_t>> ps(2);
  std::vector<future<std::int64_t>> fs;
  for (auto& p : ps) fs.push_back(p.get_future());
  std::vector<std::int64_t> got;
  Status st = Status::kPeerDead;
  sim.spawn(await_all(std::move(fs), &got, &st));
  sim.schedule_at(sim::SimTime{10}, [p = ps[1]] { p.set_value(2); });
  sim.schedule_at(sim::SimTime{20}, [p = ps[0]] { p.set_value(1); });
  sim.run();
  EXPECT_EQ(st, Status::kOk);
  EXPECT_EQ(got, (std::vector<std::int64_t>{1, 2}));
}

}  // namespace
}  // namespace nicbar
