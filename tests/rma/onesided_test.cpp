// One-sided rput/rget/remote_cas over the simulated NIC: remote completion
// semantics, per-target put ordering, CAS linearizability under racing
// initiators, registration-race parking, and failure surfacing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "host/cluster.hpp"
#include "rma/domain.hpp"
#include "sim/time.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using coll::Status;
using gm::Endpoint;

struct Fixture {
  explicit Fixture(std::size_t n, host::ClusterParams cp = {}) {
    cp.nodes = n;
    cluster = std::make_unique<host::Cluster>(cp);
    for (std::size_t i = 0; i < n; ++i) {
      ports.push_back(cluster->open_port(static_cast<net::NodeId>(i), 2));
      domains.push_back(std::make_unique<rma::Domain>(*ports.back()));
    }
  }
  [[nodiscard]] Endpoint ep(std::size_t i) const {
    return Endpoint{static_cast<net::NodeId>(i), 2};
  }
  std::unique_ptr<host::Cluster> cluster;
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<rma::Domain>> domains;
};

sim::Task run_put(rma::Domain& d, Endpoint dst, std::uint64_t seg, std::uint64_t idx,
                  std::int64_t value, Status* out) {
  rma::future<Status> f = d.rput(dst, seg, idx, value);
  *out = co_await f;
}

TEST(RmaOneSided, RputCommitsAtTargetBeforeCompleting) {
  Fixture f(2);
  rma::Segment& target = f.domains[1]->register_segment(8);
  Status st = Status::kPeerDead;
  f.cluster->sim().spawn(run_put(*f.domains[0], f.ep(1), target.id(), 3, 42, &st));
  f.cluster->sim().run();
  EXPECT_EQ(st, Status::kOk);
  EXPECT_EQ(target.load(3), 42);
  EXPECT_EQ(f.cluster->nic(1).stats().rma_puts_applied, 1u);
  EXPECT_EQ(f.cluster->nic(0).stats().rma_ops_posted, 1u);
  EXPECT_EQ(f.cluster->nic(0).stats().rma_replies, 1u);
}

sim::Task run_get(rma::Domain& d, Endpoint dst, std::uint64_t seg, std::uint64_t idx,
                  std::int64_t* out, Status* st) {
  rma::future<std::int64_t> f = d.rget(dst, seg, idx);
  *out = co_await f;
  *st = f.status();
}

TEST(RmaOneSided, RgetFetchesRemoteWord) {
  Fixture f(2);
  rma::Segment& target = f.domains[1]->register_segment(4);
  target.store(0, 7);
  std::int64_t got = -1;
  Status st = Status::kPeerDead;
  f.cluster->sim().spawn(run_get(*f.domains[0], f.ep(1), target.id(), 0, &got, &st));
  f.cluster->sim().run();
  EXPECT_EQ(st, Status::kOk);
  EXPECT_EQ(got, 7);
  EXPECT_EQ(f.cluster->nic(1).stats().rma_gets_served, 1u);
}

// Per-target ordering: data puts posted before a flag put must be visible at
// the target when the flag is. kRounds rounds of (8 data words, then flag).
constexpr std::int64_t kRounds = 12;

sim::Task ordered_producer(rma::Domain& d, Endpoint dst, std::uint64_t seg) {
  for (std::int64_t round = 1; round <= kRounds; ++round) {
    for (std::uint64_t w = 1; w <= 8; ++w) {
      (void)d.rput(dst, seg, w, round * 100 + static_cast<std::int64_t>(w));
    }
    (void)d.rput(dst, seg, 0, round);  // flag: all 8 data words of this round
  }
  co_return;
}

sim::Task ordered_consumer(rma::Segment& seg, int* violations) {
  for (std::int64_t round = 1; round <= kRounds; ++round) {
    (void)co_await seg.wait_ge(0, round);
    for (std::uint64_t w = 1; w <= 8; ++w) {
      // The flag put was posted after the data puts, same initiator, same
      // target: delivery order pins the data (of this round or newer).
      if (seg.load(w) < round * 100 + static_cast<std::int64_t>(w)) ++*violations;
    }
  }
}

TEST(RmaOneSided, PutsToOneTargetCommitInPostingOrder) {
  Fixture f(2);
  rma::Segment& target = f.domains[1]->register_segment(16);
  int violations = 0;
  f.cluster->sim().spawn(ordered_consumer(target, &violations));
  f.cluster->sim().spawn(ordered_producer(*f.domains[0], f.ep(1), target.id()));
  f.cluster->sim().run();
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(target.load(0), kRounds);
}

// Two initiators race CAS increments on one word. Linearizability: each
// successful CAS observes a unique prior, and the union of priors is exactly
// {0 .. 2K-1} with the final value 2K.
constexpr int kIncrementsPerNode = 20;

sim::Task cas_incrementer(rma::Domain& d, Endpoint dst, std::uint64_t seg,
                          std::vector<std::int64_t>* priors, bool* failed) {
  std::int64_t expected = 0;
  int done = 0;
  while (done < kIncrementsPerNode) {
    rma::future<std::int64_t> f = d.remote_cas(dst, seg, 0, expected, expected + 1);
    const std::int64_t prior = co_await f;
    if (f.status() != Status::kOk) {
      *failed = true;
      co_return;
    }
    if (prior == expected) {
      priors->push_back(prior);
      ++done;
      expected = prior + 1;
    } else {
      expected = prior;  // lost the race: retry against the observed value
    }
  }
}

TEST(RmaOneSided, RacingCasIncrementsAreLinearizable) {
  Fixture f(3);
  rma::Segment& target = f.domains[0]->register_segment(1);
  std::vector<std::int64_t> priors1, priors2;
  bool failed = false;
  f.cluster->sim().spawn(
      cas_incrementer(*f.domains[1], f.ep(0), target.id(), &priors1, &failed));
  f.cluster->sim().spawn(
      cas_incrementer(*f.domains[2], f.ep(0), target.id(), &priors2, &failed));
  f.cluster->sim().run();
  ASSERT_FALSE(failed);
  EXPECT_EQ(target.load(0), 2 * kIncrementsPerNode);
  std::vector<std::int64_t> all = priors1;
  all.insert(all.end(), priors2.begin(), priors2.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * kIncrementsPerNode));
  for (std::int64_t i = 0; i < 2 * kIncrementsPerNode; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)], i) << "prior " << i << " missing or duplicated";
  }
  EXPECT_GE(f.cluster->nic(0).stats().rma_cas_applied, static_cast<std::uint64_t>(
                                                           2 * kIncrementsPerNode));
}

TEST(RmaOneSided, OpsArrivingBeforeRegistrationParkAndFlush) {
  Fixture f(2);
  Status st = Status::kPeerDead;
  rma::Segment* target = nullptr;
  // The put launches at t=0; the target registers segment 0 only at t=200us,
  // so the op must park on arrival and flush at registration.
  f.cluster->sim().spawn(run_put(*f.domains[0], f.ep(1), 0, 2, 11, &st));
  f.cluster->sim().schedule_at(sim::SimTime{sim::microseconds(200.0).ps()},
                               [&f, &target] { target = &f.domains[1]->register_segment(4); });
  f.cluster->sim().run();
  EXPECT_EQ(st, Status::kOk);
  ASSERT_NE(target, nullptr);
  EXPECT_EQ(target->load(2), 11);
  EXPECT_GE(f.cluster->nic(1).stats().rma_parked, 1u);
}

sim::Task two_puts_to_dead_peer(rma::Domain& d, Endpoint dst, Status* first, Status* second,
                                bool* second_ready_at_once) {
  rma::future<Status> f1 = d.rput(dst, 0, 0, 1);
  *first = co_await f1;
  rma::future<Status> f2 = d.rput(dst, 0, 0, 2);
  *second_ready_at_once = f2.ready();  // poisoned target: fails synchronously
  *second = co_await f2;
}

TEST(RmaOneSided, DeadPeerFailsInFlightThenFastFails) {
  host::ClusterParams cp;
  cp.nic.max_retransmissions = 3;  // give up quickly
  Fixture f(2, cp);
  f.cluster->nic(1).crash();  // target NIC never acks
  Status st1 = Status::kOk;
  Status st2 = Status::kOk;
  bool fast = false;
  f.cluster->sim().spawn(two_puts_to_dead_peer(*f.domains[0], f.ep(1), &st1, &st2, &fast));
  f.cluster->sim().run();
  EXPECT_EQ(st1, Status::kPeerDead);
  EXPECT_EQ(st2, Status::kPeerDead);
  EXPECT_TRUE(fast);
  EXPECT_TRUE(f.domains[0]->is_dead(1));
  EXPECT_EQ(f.domains[0]->inflight(), 0u);
}

sim::Task put_with_timeout(rma::Domain& d, Endpoint dst, Status* out) {
  rma::future<Status> f = d.rput(dst, /*segment=*/7, 0, 1, /*timeout=*/sim::microseconds(100.0));
  *out = co_await f;
}

TEST(RmaOneSided, PerOpDeadlineSettlesWithKDeadline) {
  Fixture f(2);
  // Segment 7 is never registered at the target: the op parks forever and
  // only the initiator-side timeout can settle the future.
  Status st = Status::kOk;
  f.cluster->sim().spawn(put_with_timeout(*f.domains[0], f.ep(1), &st));
  f.cluster->sim().run();
  EXPECT_EQ(st, Status::kDeadline);
  EXPECT_EQ(f.domains[0]->inflight(), 0u);
}

}  // namespace
}  // namespace nicbar
