// Host-driven RDMA barriers (dissemination, tree-put) through the coll::
// dispatch: synchronization semantics, repetition with monotonic flags,
// failure/deadline abort, and bit-identical determinism across worker
// counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "coll/runner.hpp"
#include "coll/sweep.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using coll::BarrierMember;
using coll::BarrierSpec;
using coll::BarrierStatus;
using coll::RdmaAlgorithm;

struct Fixture {
  explicit Fixture(std::size_t n, host::ClusterParams cp = {}) {
    cp.nodes = n;
    cluster = std::make_unique<host::Cluster>(cp);
    for (std::size_t i = 0; i < n; ++i) {
      group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
    }
    for (std::size_t i = 0; i < n; ++i) {
      ports.push_back(cluster->open_port(static_cast<net::NodeId>(i), 2));
    }
  }
  std::unique_ptr<host::Cluster> cluster;
  std::vector<gm::Endpoint> group;
  std::vector<std::unique_ptr<gm::Port>> ports;
};

sim::Task barrier_loop(sim::Simulator& sim, BarrierMember& m, sim::Duration entry_delay,
                       int reps, sim::SimTime* entered, sim::SimTime* exited,
                       BarrierStatus* last) {
  if (!entry_delay.is_zero()) co_await sim.delay(entry_delay);
  *entered = sim.now();
  for (int r = 0; r < reps; ++r) {
    *last = co_await m.run();
    if (*last != BarrierStatus::kOk) break;
  }
  *exited = sim.now();
}

void check_synchronizes(std::size_t n, BarrierSpec spec, std::vector<sim::Duration> delays,
                        int reps = 1) {
  Fixture f(n);
  std::vector<std::unique_ptr<BarrierMember>> members;
  std::vector<sim::SimTime> entered(n), exited(n);
  std::vector<BarrierStatus> last(n, BarrierStatus::kOk);
  for (std::size_t i = 0; i < n; ++i) {
    members.push_back(std::make_unique<BarrierMember>(*f.ports[i], f.group, spec));
    f.cluster->sim().spawn(barrier_loop(f.cluster->sim(), *members[i], delays[i], reps,
                                        &entered[i], &exited[i], &last[i]));
  }
  f.cluster->sim().run();
  const sim::SimTime last_entry = *std::max_element(entered.begin(), entered.end());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(last[i], BarrierStatus::kOk) << "member " << i;
    EXPECT_GE(exited[i].ps(), last_entry.ps())
        << "member " << i << " exited before every member entered";
    EXPECT_GT(exited[i].ps(), 0) << "member " << i << " never completed";
  }
}

std::vector<sim::Duration> no_delays(std::size_t n) { return std::vector<sim::Duration>(n); }

std::vector<sim::Duration> staggered(std::size_t n) {
  std::vector<sim::Duration> d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = sim::microseconds(41.0 * static_cast<double>(i));
  return d;
}

class RdmaBarrierVariants
    : public ::testing::TestWithParam<std::tuple<RdmaAlgorithm, std::size_t, std::size_t>> {};

TEST_P(RdmaBarrierVariants, SynchronizesSimultaneousEntry) {
  auto [alg, radix, n] = GetParam();
  check_synchronizes(n, coll::rdma_spec(alg, radix), no_delays(n));
}

TEST_P(RdmaBarrierVariants, SynchronizesStaggeredEntry) {
  auto [alg, radix, n] = GetParam();
  check_synchronizes(n, coll::rdma_spec(alg, radix), staggered(n));
}

TEST_P(RdmaBarrierVariants, RepeatsWithMonotonicFlags) {
  auto [alg, radix, n] = GetParam();
  // 25 back-to-back instances with no flag resets: instance separation must
  // come from the monotonic instance numbers alone.
  check_synchronizes(n, coll::rdma_spec(alg, radix), staggered(n), /*reps=*/25);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSizes, RdmaBarrierVariants,
    ::testing::Values(std::tuple{RdmaAlgorithm::kDissemination, std::size_t{2}, std::size_t{2}},
                      std::tuple{RdmaAlgorithm::kDissemination, std::size_t{2}, std::size_t{3}},
                      std::tuple{RdmaAlgorithm::kDissemination, std::size_t{2}, std::size_t{8}},
                      std::tuple{RdmaAlgorithm::kTreePut, std::size_t{2}, std::size_t{2}},
                      std::tuple{RdmaAlgorithm::kTreePut, std::size_t{2}, std::size_t{8}},
                      std::tuple{RdmaAlgorithm::kTreePut, std::size_t{3}, std::size_t{7}},
                      std::tuple{RdmaAlgorithm::kTreePut, std::size_t{4}, std::size_t{16}}));

TEST(RdmaBarrier, MemberDeathAbortsEveryMember) {
  host::ClusterParams cp;
  cp.nic.max_retransmissions = 3;
  Fixture f(4, cp);
  // Members not adjacent to the dead node in the put graph cannot observe
  // the death directly; the deadline is their backstop (the same doctrine as
  // the NIC families).
  BarrierSpec spec = coll::rdma_spec(RdmaAlgorithm::kDissemination);
  spec.deadline = sim::milliseconds(50.0);
  f.cluster->nic(3).crash();
  std::vector<std::unique_ptr<BarrierMember>> members;
  std::vector<sim::SimTime> entered(3), exited(3);
  std::vector<BarrierStatus> last(3, BarrierStatus::kOk);
  for (std::size_t i = 0; i < 3; ++i) {
    members.push_back(std::make_unique<BarrierMember>(*f.ports[i], f.group, spec));
    f.cluster->sim().spawn(barrier_loop(f.cluster->sim(), *members[i], sim::Duration{0}, 1,
                                        &entered[i], &exited[i], &last[i]));
  }
  f.cluster->sim().run();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NE(last[i], BarrierStatus::kOk) << "member " << i << " completed a broken barrier";
    EXPECT_TRUE(last[i] == BarrierStatus::kPeerDead || last[i] == BarrierStatus::kDeadline)
        << "member " << i;
  }
  // Once aborted with kPeerDead the member is poisoned for later runs.
  for (std::size_t i = 0; i < 3; ++i) {
    if (last[i] == BarrierStatus::kPeerDead) {
      EXPECT_TRUE(members[i]->peer_failed());
    }
  }
}

TEST(RdmaBarrier, DeadlineAbortsWhenAMemberNeverArrives) {
  Fixture f(2);
  BarrierSpec spec = coll::rdma_spec(RdmaAlgorithm::kTreePut);
  spec.deadline = sim::microseconds(500.0);
  BarrierMember m0(*f.ports[0], f.group, spec);
  BarrierMember m1(*f.ports[1], f.group, spec);  // constructed but never run
  sim::SimTime entered{0}, exited{0};
  BarrierStatus last = BarrierStatus::kOk;
  f.cluster->sim().spawn(
      barrier_loop(f.cluster->sim(), m0, sim::Duration{0}, 1, &entered, &exited, &last));
  f.cluster->sim().run();
  EXPECT_EQ(last, BarrierStatus::kDeadline);
  EXPECT_GE((exited - entered).us(), 500.0);
}

TEST(RdmaBarrier, RunFuzzyRejectsRdmaFamily) {
  Fixture f(2);
  BarrierMember m(*f.ports[0], f.group, coll::rdma_spec(RdmaAlgorithm::kDissemination));
  EXPECT_THROW((void)m.run_fuzzy(sim::microseconds(1.0)), std::logic_error);
}

TEST(RdmaBarrier, ManagedGroupIsRejected) {
  Fixture f(2);
  BarrierSpec spec = coll::rdma_spec(RdmaAlgorithm::kDissemination);
  spec.group = 5;
  EXPECT_THROW(BarrierMember(*f.ports[0], f.group, spec), std::invalid_argument);
}

// The determinism contract extends to the new family: the same plan must
// produce bit-identical simulated times for any worker count.
TEST(RdmaBarrier, BitIdenticalAcrossWorkerCounts) {
  coll::SweepPlan plan;
  for (const RdmaAlgorithm alg : {RdmaAlgorithm::kDissemination, RdmaAlgorithm::kTreePut}) {
    coll::ExperimentParams p = coll::experiment(nic::lanai43(), 8, /*reps=*/40);
    p.spec = coll::rdma_spec(alg, 2);
    plan.add(coll::variant_label(p), p);
  }
  const coll::SweepResult serial = plan.run({.workers = 1});
  const coll::SweepResult parallel = plan.run({.workers = 4});
  ASSERT_EQ(serial.cases.size(), parallel.cases.size());
  for (std::size_t i = 0; i < serial.cases.size(); ++i) {
    EXPECT_EQ(serial.cases[i].result.total.ps(), parallel.cases[i].result.total.ps())
        << serial.cases[i].label;
    EXPECT_EQ(serial.cases[i].result.barrier_failures, 0u) << serial.cases[i].label;
  }
}

}  // namespace
}  // namespace nicbar
