// End-to-end GM messaging over the simulated cluster: send/receive path,
// token flow control, reliability under packet loss.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coll/runner.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using gm::GmEvent;
using nic::GmEventType;

host::ClusterParams small_cluster(std::size_t nodes) {
  host::ClusterParams p;
  p.nodes = nodes;
  return p;
}

sim::Task sender_proc(gm::Port& port, gm::Endpoint dst, int count, std::int64_t bytes) {
  for (int i = 0; i < count; ++i) {
    co_await port.send(dst, bytes, static_cast<std::uint64_t>(i + 1));
  }
}

sim::Task receiver_proc(gm::Port& port, int count, std::vector<GmEvent>* out) {
  for (int i = 0; i < count; ++i) {
    co_await port.provide_receive_buffer(4096);
  }
  for (int i = 0; i < count; ++i) {
    GmEvent ev = co_await port.receive();
    out->push_back(ev);
  }
}

TEST(MessagingTest, SingleMessageDelivered) {
  host::Cluster cluster(small_cluster(2));
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  std::vector<GmEvent> got;
  cluster.sim().spawn(receiver_proc(*p1, 1, &got));
  cluster.sim().spawn(sender_proc(*p0, gm::Endpoint{1, 2}, 1, 64));
  cluster.sim().run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, GmEventType::kRecv);
  EXPECT_EQ(got[0].peer.node, 0);
  EXPECT_EQ(got[0].peer.port, 2);
  EXPECT_EQ(got[0].bytes, 64);
  EXPECT_EQ(got[0].tag, 1u);
}

TEST(MessagingTest, OneWayLatencyInCalibratedRegime) {
  // The paper's framing: host-based one-way latency is tens of microseconds
  // on LANai 4.3 (a full barrier round costs ~45us with our calibration).
  host::Cluster cluster(small_cluster(2));
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  std::vector<GmEvent> got;
  cluster.sim().spawn(receiver_proc(*p1, 1, &got));
  cluster.sim().spawn(sender_proc(*p0, gm::Endpoint{1, 2}, 1, 8));
  cluster.sim().run();
  const double us = cluster.sim().now().us();
  EXPECT_GT(us, 25.0);
  EXPECT_LT(us, 70.0);
}

TEST(MessagingTest, ManyMessagesInOrder) {
  host::Cluster cluster(small_cluster(2));
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  std::vector<GmEvent> got;
  cluster.sim().spawn(receiver_proc(*p1, 50, &got));
  cluster.sim().spawn(sender_proc(*p0, gm::Endpoint{1, 2}, 50, 256));
  cluster.sim().run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].tag, static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(cluster.nic(0).stats().retransmissions, 0u);
}

TEST(MessagingTest, BidirectionalTraffic) {
  host::Cluster cluster(small_cluster(2));
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  std::vector<GmEvent> got0, got1;
  cluster.sim().spawn(receiver_proc(*p0, 20, &got0));
  cluster.sim().spawn(receiver_proc(*p1, 20, &got1));
  cluster.sim().spawn(sender_proc(*p0, gm::Endpoint{1, 2}, 20, 32));
  cluster.sim().spawn(sender_proc(*p1, gm::Endpoint{0, 2}, 20, 32));
  cluster.sim().run();
  EXPECT_EQ(got0.size(), 20u);
  EXPECT_EQ(got1.size(), 20u);
}

TEST(MessagingTest, CrossTrafficManyNodes) {
  host::Cluster cluster(small_cluster(8));
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::vector<GmEvent>> got(8);
  for (net::NodeId i = 0; i < 8; ++i) ports.push_back(cluster.open_port(i, 2));
  // Every node sends 5 messages to every other node.
  for (net::NodeId i = 0; i < 8; ++i) {
    cluster.sim().spawn(receiver_proc(*ports[i], 35, &got[i]));
    for (net::NodeId j = 0; j < 8; ++j) {
      if (i == j) continue;
      cluster.sim().spawn(sender_proc(*ports[i], gm::Endpoint{j, 2}, 5, 16));
    }
  }
  cluster.sim().run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)].size(), 35u);
}

TEST(MessagingTest, LossyLinkRecoveredByRetransmission) {
  host::ClusterParams p = small_cluster(2);
  host::Cluster cluster(p);
  // Drop 30% of packets on node 0's uplink (data AND acks suffer).
  cluster.network().uplink(0).set_drop_probability(0.30, 99);
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  std::vector<GmEvent> got;
  cluster.sim().spawn(receiver_proc(*p1, 30, &got));
  cluster.sim().spawn(sender_proc(*p0, gm::Endpoint{1, 2}, 30, 128));
  cluster.sim().run();
  ASSERT_EQ(got.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].tag, static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_GT(cluster.nic(0).stats().retransmissions, 0u);
}

TEST(MessagingTest, DuplicatesAreDropped) {
  host::Cluster cluster(small_cluster(2));
  // Drop only acks from node 1 back to node 0: node 0 retransmits data that
  // node 1 already accepted; node 1 must de-duplicate.
  cluster.network().uplink(1).set_drop_predicate(
      [](const net::Packet& p) { return p.type == net::PacketType::kAck; });
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  std::vector<GmEvent> got;
  cluster.sim().spawn(receiver_proc(*p1, 3, &got));
  cluster.sim().spawn(sender_proc(*p0, gm::Endpoint{1, 2}, 3, 64));
  cluster.sim().run(sim::SimTime{0} + 20_ms);
  EXPECT_EQ(got.size(), 3u);
  EXPECT_GT(cluster.nic(1).stats().duplicates_dropped, 0u);
}

TEST(MessagingTest, NoReceiveTokenTriggersNackRecovery) {
  host::Cluster cluster(small_cluster(2));
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  std::vector<GmEvent> got;
  // Receiver provides its buffer late: the first delivery attempt finds no
  // token, is NACKed, and the retransmission lands after the buffer appears.
  cluster.sim().spawn([](sim::Simulator& sim, gm::Port& port,
                         std::vector<GmEvent>* out) -> sim::Task {
    co_await sim.delay(300_us);
    co_await port.provide_receive_buffer(4096);
    GmEvent ev = co_await port.receive();
    out->push_back(ev);
  }(cluster.sim(), *p1, &got));
  cluster.sim().spawn(sender_proc(*p0, gm::Endpoint{1, 2}, 1, 64));
  cluster.sim().run(sim::SimTime{0} + 50_ms);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_GT(cluster.nic(1).stats().no_token_drops, 0u);
  EXPECT_GT(cluster.nic(0).stats().retransmissions, 0u);
}

TEST(MessagingTest, MessageToClosedPortIsDroppedQuietly) {
  host::Cluster cluster(small_cluster(2));
  auto p0 = cluster.open_port(0, 2);
  // Port 2 on node 1 never opens.
  cluster.sim().spawn(sender_proc(*p0, gm::Endpoint{1, 2}, 1, 64));
  cluster.sim().run(sim::SimTime{0} + 5_ms);
  EXPECT_GT(cluster.nic(1).stats().closed_port_drops, 0u);
}

TEST(MessagingTest, SelfSendLoopsBack) {
  host::Cluster cluster(small_cluster(2));
  auto a = cluster.open_port(0, 2);
  auto b = cluster.open_port(0, 3);  // second port on the same NIC
  std::vector<GmEvent> got;
  cluster.sim().spawn(receiver_proc(*b, 1, &got));
  cluster.sim().spawn(sender_proc(*a, gm::Endpoint{0, 3}, 1, 64));
  cluster.sim().run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].peer.node, 0);
  EXPECT_EQ(got[0].peer.port, 2);
}

TEST(MessagingTest, HostCpuContentionSlowsCoLocatedProcesses) {
  // Two processes on one node share the host CPUs; with host_cpus=1 their
  // computation serializes, with 2 (the paper's dual Pentium II) it overlaps.
  auto run_with_cpus = [](std::size_t cpus) {
    host::ClusterParams p;
    p.nodes = 1;
    p.host_cpus = cpus;
    host::Cluster cluster(p);
    auto a = cluster.open_port(0, 2);
    auto b = cluster.open_port(0, 3);
    cluster.sim().spawn([](gm::Port& port) -> sim::Task {
      co_await port.compute(100_us);
    }(*a));
    cluster.sim().spawn([](gm::Port& port) -> sim::Task {
      co_await port.compute(100_us);
    }(*b));
    cluster.sim().run();
    return cluster.sim().now().us();
  };
  EXPECT_NEAR(run_with_cpus(1), 200.0, 1.0);
  EXPECT_NEAR(run_with_cpus(2), 100.0, 1.0);
}

}  // namespace
}  // namespace nicbar
