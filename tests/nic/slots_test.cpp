// nic::SlotTable — admission control, fencing predicate, reuse accounting.
#include "nic/slots.hpp"

#include <gtest/gtest.h>

namespace nicbar::nic {
namespace {

TEST(SlotTableTest, AllocateUpToCapacity) {
  SlotTable t(2);
  EXPECT_EQ(t.capacity(), 2);
  EXPECT_EQ(t.in_use(), 0);
  EXPECT_TRUE(t.allocate(1, 2));
  EXPECT_TRUE(t.allocate(2, 2));
  EXPECT_EQ(t.in_use(), 2);
  EXPECT_EQ(t.stats().allocations, 2u);
  EXPECT_EQ(t.stats().rejections, 0u);
}

TEST(SlotTableTest, FullTableRejectsAndCounts) {
  SlotTable t(1);
  EXPECT_TRUE(t.allocate(1, 2));
  EXPECT_FALSE(t.allocate(2, 2));
  EXPECT_FALSE(t.allocate(3, 5));
  EXPECT_EQ(t.stats().rejections, 2u);
  EXPECT_EQ(t.in_use(), 1);
}

TEST(SlotTableTest, DoubleAllocateSameBindingIsIdempotent) {
  SlotTable t(1);
  EXPECT_TRUE(t.allocate(1, 2));
  EXPECT_TRUE(t.allocate(1, 2));  // same (group, port): success, no new slot
  EXPECT_EQ(t.in_use(), 1);
  EXPECT_EQ(t.stats().rejections, 0u);
}

TEST(SlotTableTest, SameGroupOnTwoPortsNeedsTwoSlots) {
  // Co-located members of one group each bind their own port.
  SlotTable t(2);
  EXPECT_TRUE(t.allocate(1, 2));
  EXPECT_TRUE(t.allocate(1, 3));
  EXPECT_EQ(t.in_use(), 2);
  EXPECT_TRUE(t.bound(1, 2));
  EXPECT_TRUE(t.bound(1, 3));
  t.release(1, 2);
  EXPECT_FALSE(t.bound(1, 2));
  EXPECT_TRUE(t.bound(1, 3));
}

TEST(SlotTableTest, BoundIsTheFencePredicate) {
  SlotTable t(4);
  EXPECT_FALSE(t.bound(1, 2));
  EXPECT_TRUE(t.allocate(1, 2));
  EXPECT_TRUE(t.bound(1, 2));
  EXPECT_FALSE(t.bound(1, 3));  // same group, different port: not bound
  EXPECT_FALSE(t.bound(2, 2));  // different group: not bound
  t.release(1, 2);
  EXPECT_FALSE(t.bound(1, 2));
}

TEST(SlotTableTest, ReleaseUnknownBindingIsIgnored) {
  SlotTable t(2);
  t.release(99, 7);  // no throw, no count
  EXPECT_EQ(t.stats().frees, 0u);
  EXPECT_TRUE(t.allocate(1, 2));
  t.release(1, 3);  // wrong port: still ignored
  EXPECT_EQ(t.in_use(), 1);
}

TEST(SlotTableTest, ReleasePortDropsEveryBindingOfThatPort) {
  SlotTable t(4);
  EXPECT_TRUE(t.allocate(1, 2));
  EXPECT_TRUE(t.allocate(2, 2));
  EXPECT_TRUE(t.allocate(3, 5));
  t.release_port(2);
  EXPECT_EQ(t.in_use(), 1);
  EXPECT_FALSE(t.bound(1, 2));
  EXPECT_FALSE(t.bound(2, 2));
  EXPECT_TRUE(t.bound(3, 5));
}

TEST(SlotTableTest, GenerationsCountSlotReuse) {
  SlotTable t(1);
  EXPECT_TRUE(t.allocate(1, 2));
  t.release(1, 2);
  EXPECT_TRUE(t.allocate(2, 2));  // reuses the freed slot
  t.release(2, 2);
  EXPECT_TRUE(t.allocate(3, 2));
  EXPECT_GE(t.stats().generations, 2u);
  EXPECT_EQ(t.stats().frees, 2u);
  EXPECT_EQ(t.stats().allocations, 3u);
}

TEST(SlotTableTest, HighWaterTracksPeakNotCurrent) {
  SlotTable t(4);
  EXPECT_TRUE(t.allocate(1, 2));
  EXPECT_TRUE(t.allocate(2, 2));
  EXPECT_TRUE(t.allocate(3, 2));
  t.release(1, 2);
  t.release(2, 2);
  EXPECT_EQ(t.in_use(), 1);
  EXPECT_EQ(t.stats().high_water, 3u);
}

TEST(SlotTableTest, ZeroCapacityRejectsEverything) {
  SlotTable t(0);
  EXPECT_FALSE(t.allocate(1, 2));
  EXPECT_EQ(t.stats().rejections, 1u);
  SlotTable neg(-3);  // negative clamps to zero
  EXPECT_EQ(neg.capacity(), 0);
  EXPECT_FALSE(neg.allocate(1, 2));
}

}  // namespace
}  // namespace nicbar::nic
