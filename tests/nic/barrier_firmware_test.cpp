// Unit-level tests of the NIC barrier firmware: unexpected-message records,
// PE advance, GB phases, epochs, completion events, error handling.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using coll::BarrierMember;
using nic::BarrierAlgorithm;
using nic::GmEventType;

struct Rig {
  explicit Rig(std::size_t n, host::ClusterParams cp = {}) {
    cp.nodes = n;
    cluster = std::make_unique<host::Cluster>(cp);
    for (std::size_t i = 0; i < n; ++i) {
      group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
      ports.push_back(cluster->open_port(static_cast<net::NodeId>(i), 2));
    }
  }
  coll::BarrierSpec nic_spec(BarrierAlgorithm alg, std::size_t dim = 2) const {
    coll::BarrierSpec s;
    s.location = coll::Location::kNic;
    s.algorithm = alg;
    s.gb_dimension = dim;
    return s;
  }
  std::unique_ptr<host::Cluster> cluster;
  std::vector<gm::Endpoint> group;
  std::vector<std::unique_ptr<gm::Port>> ports;
};

sim::Task run_barrier(BarrierMember& m, sim::Duration delay, sim::Simulator& sim,
                      bool* done = nullptr) {
  co_await sim.delay(delay);
  co_await m.run();
  if (done != nullptr) *done = true;
}

TEST(BarrierFirmwareTest, PePacketCountsAreExact) {
  // An N-node PE barrier sends exactly log2(N) packets per NIC.
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    Rig rig(n);
    std::vector<std::unique_ptr<BarrierMember>> ms;
    for (std::size_t i = 0; i < n; ++i) {
      ms.push_back(std::make_unique<BarrierMember>(
          *rig.ports[i], rig.group, rig.nic_spec(BarrierAlgorithm::kPairwiseExchange)));
      rig.cluster->sim().spawn(run_barrier(*ms.back(), sim::Duration{0}, rig.cluster->sim()));
    }
    rig.cluster->sim().run();
    std::size_t rounds = 0;
    for (std::size_t p = 1; p < n; p <<= 1) ++rounds;
    for (std::size_t i = 0; i < n; ++i) {
      const nic::NicStats& s = rig.cluster->nic(static_cast<net::NodeId>(i)).stats();
      EXPECT_EQ(s.barrier_packets_sent, rounds) << "n=" << n << " node=" << i;
      EXPECT_EQ(s.barrier_packets_received, rounds) << "n=" << n << " node=" << i;
      EXPECT_EQ(s.barriers_started, 1u);
      EXPECT_EQ(s.barriers_completed, 1u);
    }
  }
}

TEST(BarrierFirmwareTest, GbPacketCountsAreExact) {
  // GB: each non-root sends 1 gather; each parent sends 1 bcast per child.
  Rig rig(8);
  std::vector<std::unique_ptr<BarrierMember>> ms;
  for (std::size_t i = 0; i < 8; ++i) {
    ms.push_back(std::make_unique<BarrierMember>(
        *rig.ports[i], rig.group, rig.nic_spec(BarrierAlgorithm::kGatherBroadcast, 2)));
    rig.cluster->sim().spawn(run_barrier(*ms.back(), sim::Duration{0}, rig.cluster->sim()));
  }
  rig.cluster->sim().run();
  for (std::size_t i = 0; i < 8; ++i) {
    const nic::NicStats& s = rig.cluster->nic(static_cast<net::NodeId>(i)).stats();
    const coll::GbTreeSlice slice = coll::gb_tree(rig.group, i, 2);
    const std::size_t expect_sent = slice.children.size() + (slice.is_root() ? 0 : 1);
    EXPECT_EQ(s.barrier_packets_sent, expect_sent) << "node " << i;
  }
}

TEST(BarrierFirmwareTest, SimultaneousStartRecordsNoUnexpected) {
  // When everyone enters together the PE exchange pattern is... still racy
  // at NIC granularity, but a *fully serialized* entry records unexpected
  // messages on the slow node only.
  Rig rig(2);
  BarrierMember a(*rig.ports[0], rig.group, rig.nic_spec(BarrierAlgorithm::kPairwiseExchange));
  BarrierMember b(*rig.ports[1], rig.group, rig.nic_spec(BarrierAlgorithm::kPairwiseExchange));
  rig.cluster->sim().spawn(run_barrier(a, sim::Duration{0}, rig.cluster->sim()));
  rig.cluster->sim().spawn(run_barrier(b, 500_us, rig.cluster->sim()));
  rig.cluster->sim().run();
  // Node 0 fired early; node 1's NIC recorded it as unexpected (§3.1).
  EXPECT_EQ(rig.cluster->nic(1).stats().unexpected_recorded, 1u);
  EXPECT_EQ(rig.cluster->nic(1).stats().bit_collisions, 0u);
  EXPECT_EQ(rig.cluster->nic(0).stats().barriers_completed, 1u);
  EXPECT_EQ(rig.cluster->nic(1).stats().barriers_completed, 1u);
}

TEST(BarrierFirmwareTest, CompletionEventCarriesEpoch) {
  Rig rig(2);
  std::vector<std::uint32_t> epochs;
  rig.cluster->sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> group,
                              std::vector<std::uint32_t>* out) -> sim::Task {
    for (int k = 0; k < 3; ++k) {
      nic::BarrierToken tok;
      tok.algorithm = BarrierAlgorithm::kPairwiseExchange;
      tok.peers = coll::pe_schedule(group, 0);
      co_await port.provide_barrier_buffer();
      (void)co_await port.barrier_send(std::move(tok));
      gm::GmEvent ev = co_await port.receive();
      EXPECT_EQ(ev.type, GmEventType::kBarrierComplete);
      out->push_back(ev.barrier_epoch);
    }
  }(*rig.ports[0], rig.group, &epochs));
  rig.cluster->sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> group) -> sim::Task {
    for (int k = 0; k < 3; ++k) {
      nic::BarrierToken tok;
      tok.algorithm = BarrierAlgorithm::kPairwiseExchange;
      tok.peers = coll::pe_schedule(group, 1);
      co_await port.provide_barrier_buffer();
      (void)co_await port.barrier_send(std::move(tok));
      (void)co_await port.receive();
    }
  }(*rig.ports[1], rig.group));
  rig.cluster->sim().run();
  EXPECT_EQ(epochs, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(BarrierFirmwareTest, DoubleBarrierOnSamePortIsAnError) {
  Rig rig(2);
  rig.cluster->sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> group) -> sim::Task {
    nic::BarrierToken tok;
    tok.algorithm = BarrierAlgorithm::kPairwiseExchange;
    tok.peers = coll::pe_schedule(group, 0);
    co_await port.provide_barrier_buffer();
    (void)co_await port.barrier_send(tok);
    // Post a second token while the first barrier is still in flight: the
    // firmware rejects this host bug loudly.
    (void)co_await port.barrier_send(tok);
  }(*rig.ports[0], rig.group));
  EXPECT_THROW(rig.cluster->sim().run(), std::logic_error);
}

TEST(BarrierFirmwareTest, BarrierActiveReflectsLifecycle) {
  Rig rig(2);
  nic::Nic& n0 = rig.cluster->nic(0);
  EXPECT_FALSE(n0.barrier_active(2));
  BarrierMember a(*rig.ports[0], rig.group, rig.nic_spec(BarrierAlgorithm::kPairwiseExchange));
  BarrierMember b(*rig.ports[1], rig.group, rig.nic_spec(BarrierAlgorithm::kPairwiseExchange));
  bool peer_done = false;
  rig.cluster->sim().spawn(run_barrier(a, sim::Duration{0}, rig.cluster->sim()));
  rig.cluster->sim().spawn(run_barrier(b, 200_us, rig.cluster->sim(), &peer_done));
  // After 50us node 0 has initiated but node 1 hasn't: barrier is active.
  rig.cluster->sim().run(sim::SimTime{0} + 50_us);
  EXPECT_TRUE(n0.barrier_active(2));
  rig.cluster->sim().run();
  EXPECT_FALSE(n0.barrier_active(2));
  EXPECT_TRUE(peer_done);
}

TEST(BarrierFirmwareTest, PeToleratesMaximallySkewedEntry) {
  // Every node enters at a wildly different time; §3.1's record/advance
  // machinery must still synchronize them.
  Rig rig(16);
  std::vector<std::unique_ptr<BarrierMember>> ms;
  int done = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    ms.push_back(std::make_unique<BarrierMember>(
        *rig.ports[i], rig.group, rig.nic_spec(BarrierAlgorithm::kPairwiseExchange)));
    rig.cluster->sim().spawn(
        [](BarrierMember& m, sim::Simulator& sim, sim::Duration d, int* counter) -> sim::Task {
          co_await sim.delay(d);
          co_await m.run();
          ++*counter;
        }(*ms.back(), rig.cluster->sim(), sim::microseconds(997.0 * ((i * 7) % 16)),
          &done));
  }
  rig.cluster->sim().run();
  EXPECT_EQ(done, 16);
  std::uint64_t collisions = 0;
  for (net::NodeId i = 0; i < 16; ++i) {
    collisions += rig.cluster->nic(i).stats().bit_collisions;
  }
  EXPECT_EQ(collisions, 0u);  // §3.1: one bit per endpoint suffices
}

TEST(BarrierFirmwareTest, GbRootNotifiesHostBeforeBroadcastArrives) {
  // §5.2: the root sends the host notification *then* broadcasts. The root's
  // completion must therefore precede every leaf's completion.
  Rig rig(8);
  std::vector<std::unique_ptr<BarrierMember>> ms;
  std::vector<sim::SimTime> exit_at(8);
  for (std::size_t i = 0; i < 8; ++i) {
    ms.push_back(std::make_unique<BarrierMember>(
        *rig.ports[i], rig.group, rig.nic_spec(BarrierAlgorithm::kGatherBroadcast, 2)));
    rig.cluster->sim().spawn([](BarrierMember& m, sim::Simulator& sim,
                                sim::SimTime* out) -> sim::Task {
      co_await m.run();
      *out = sim.now();
    }(*ms.back(), rig.cluster->sim(), &exit_at[i]));
  }
  rig.cluster->sim().run();
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_LT(exit_at[0].ps(), exit_at[i].ps()) << "root must exit first (node " << i << ")";
  }
}

TEST(BarrierFirmwareTest, ProcessorUtilizationIsTracked) {
  Rig rig(4);
  std::vector<std::unique_ptr<BarrierMember>> ms;
  for (std::size_t i = 0; i < 4; ++i) {
    ms.push_back(std::make_unique<BarrierMember>(
        *rig.ports[i], rig.group, rig.nic_spec(BarrierAlgorithm::kPairwiseExchange)));
    rig.cluster->sim().spawn(run_barrier(*ms.back(), sim::Duration{0}, rig.cluster->sim()));
  }
  rig.cluster->sim().run();
  const sim::BusyServer& proc = rig.cluster->nic(0).processor().stats();
  EXPECT_GT(proc.jobs(), 0u);
  EXPECT_GT(proc.busy_total().ps(), 0);
}

}  // namespace
}  // namespace nicbar
