// §3.4 same-NIC loopback optimisation: "if two processes using the same NIC
// are participating in the same barrier ... a barrier message need not
// actually be sent, but rather just have a flag set".
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "coll/reduce.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using coll::BarrierMember;

struct IntraNodeRig {
  explicit IntraNodeRig(bool loopback) {
    host::ClusterParams cp;
    cp.nodes = 2;
    cp.nic.barrier_loopback = loopback;
    cluster = std::make_unique<host::Cluster>(cp);
    // Two endpoints on node 0, two on node 1.
    group = {{0, 2}, {0, 3}, {1, 2}, {1, 3}};
    for (const gm::Endpoint& e : group) ports.push_back(cluster->open_port(e.node, e.port));
  }
  double run_barriers(int reps) {
    coll::BarrierSpec spec;
    spec.location = coll::Location::kNic;
    spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
    std::vector<std::unique_ptr<BarrierMember>> members;
    for (std::size_t i = 0; i < ports.size(); ++i) {
      members.push_back(std::make_unique<BarrierMember>(*ports[i], group, spec));
      cluster->sim().spawn([](BarrierMember& m, int r) -> sim::Task {
        for (int k = 0; k < r; ++k) co_await m.run();
      }(*members.back(), reps));
    }
    cluster->sim().run();
    return cluster->sim().now().us();
  }
  std::unique_ptr<host::Cluster> cluster;
  std::vector<gm::Endpoint> group;
  std::vector<std::unique_ptr<gm::Port>> ports;
};

TEST(LoopbackTest, BarrierStillSynchronizesWithLoopback) {
  IntraNodeRig rig(true);
  rig.run_barriers(5);
  for (net::NodeId n = 0; n < 2; ++n) {
    EXPECT_EQ(rig.cluster->nic(n).stats().barriers_completed, 10u);  // 2 ports x 5
  }
}

TEST(LoopbackTest, LoopbackMessagesSkipTheWire) {
  IntraNodeRig on(true);
  on.run_barriers(3);
  // With the PE schedule over {0.2, 0.3, 1.2, 1.3}, round 1 pairs same-node
  // endpoints (0.2<->0.3 and 1.2<->1.3): those messages must not hit the
  // fabric when loopback is on.
  EXPECT_GT(on.cluster->nic(0).stats().barrier_loopback_msgs, 0u);

  IntraNodeRig off(false);
  off.run_barriers(3);
  EXPECT_EQ(off.cluster->nic(0).stats().barrier_loopback_msgs, 0u);
  // Same-node messages never hit the fabric either way (the NIC short-
  // circuits them), but without the flag optimisation they still pass
  // through the full SEND/RECV engine path: more NIC processor time burned.
  EXPECT_GT(off.cluster->nic(0).processor().stats().busy_total().ps(),
            on.cluster->nic(0).processor().stats().busy_total().ps());
}

TEST(LoopbackTest, LoopbackIsFaster) {
  IntraNodeRig on(true);
  IntraNodeRig off(false);
  const double with = on.run_barriers(20);
  const double without = off.run_barriers(20);
  EXPECT_LT(with, without);
}

TEST(LoopbackTest, ReduceUsesLoopbackToo) {
  host::ClusterParams cp;
  cp.nodes = 1;
  cp.nic.barrier_loopback = true;
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group{{0, 2}, {0, 3}, {0, 4}};
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::ReduceMember>> members;
  std::vector<std::int64_t> results(3, 0);
  for (std::size_t i = 0; i < 3; ++i) {
    ports.push_back(cluster.open_port(0, group[i].port));
    members.push_back(std::make_unique<coll::ReduceMember>(
        *ports.back(), group, coll::Location::kNic, nic::ReduceOp::kSum, 2));
    cluster.sim().spawn([](coll::ReduceMember& m, std::int64_t v,
                           std::int64_t* out) -> sim::Task {
      *out = co_await m.allreduce(v);
    }(*members.back(), static_cast<std::int64_t>(10 * (i + 1)), &results[i]));
  }
  cluster.sim().run();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(results[i], 60);
  EXPECT_GT(cluster.nic(0).stats().barrier_loopback_msgs, 0u);
  EXPECT_EQ(cluster.network().packets_injected(), 0u);  // never touched the wire
}

TEST(LoopbackTest, OffByDefault) {
  // The paper lists this optimisation as future work; the measured
  // configuration must not include it.
  EXPECT_FALSE(nic::lanai43().barrier_loopback);
  EXPECT_FALSE(nic::lanai72().barrier_loopback);
}

}  // namespace
}  // namespace nicbar
