// §3.3/§4.4: barrier reliability modes, ordering guarantees, loss recovery.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using coll::BarrierMember;
using nic::BarrierAlgorithm;
using nic::BarrierReliability;

host::ClusterParams params_with(BarrierReliability mode, std::size_t nodes = 4) {
  host::ClusterParams cp;
  cp.nodes = nodes;
  cp.nic.barrier_reliability = mode;
  cp.nic.retransmit_timeout = sim::microseconds(300.0);
  return cp;
}

coll::BarrierSpec nic_pe() {
  coll::BarrierSpec s;
  s.location = coll::Location::kNic;
  s.algorithm = BarrierAlgorithm::kPairwiseExchange;
  return s;
}

int run_barriers(host::Cluster& cluster, int reps, std::size_t nodes,
                 sim::Duration horizon = sim::milliseconds(500.0)) {
  std::vector<gm::Endpoint> group;
  for (std::size_t i = 0; i < nodes; ++i) {
    group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
  }
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<BarrierMember>> members;
  int completed = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    ports.push_back(cluster.open_port(static_cast<net::NodeId>(i), 2));
    members.push_back(std::make_unique<BarrierMember>(*ports.back(), group, nic_pe()));
    cluster.sim().spawn([](BarrierMember& m, int r, int* done) -> sim::Task {
      for (int k = 0; k < r; ++k) co_await m.run();
      ++*done;
    }(*members.back(), reps, &completed));
  }
  cluster.sim().run(sim::SimTime{0} + horizon);
  return completed;
}

class ReliabilityModes : public ::testing::TestWithParam<BarrierReliability> {};

TEST_P(ReliabilityModes, LosslessFabricCompletes) {
  host::Cluster cluster(params_with(GetParam()));
  EXPECT_EQ(run_barriers(cluster, 20, 4), 4);
}

TEST_P(ReliabilityModes, StaggeredStartsComplete) {
  host::Cluster cluster(params_with(GetParam(), 8));
  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < 8; ++i) group.push_back(gm::Endpoint{i, 2});
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<BarrierMember>> members;
  int done = 0;
  for (net::NodeId i = 0; i < 8; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    members.push_back(std::make_unique<BarrierMember>(*ports.back(), group, nic_pe()));
    cluster.sim().spawn([](sim::Simulator& sim, BarrierMember& m, sim::Duration d,
                           int* counter) -> sim::Task {
      co_await sim.delay(d);
      for (int k = 0; k < 5; ++k) co_await m.run();
      ++*counter;
    }(cluster.sim(), *members.back(), sim::microseconds(61.0 * i), &done));
  }
  cluster.sim().run();
  EXPECT_EQ(done, 8);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ReliabilityModes,
                         ::testing::Values(BarrierReliability::kUnreliable,
                                           BarrierReliability::kSharedStream,
                                           BarrierReliability::kSeparateAcks),
                         [](const auto& info) {
                           switch (info.param) {
                             case BarrierReliability::kUnreliable: return "Unreliable";
                             case BarrierReliability::kSharedStream: return "SharedStream";
                             case BarrierReliability::kSeparateAcks: return "SeparateAcks";
                           }
                           return "?";
                         });

TEST(BarrierLossTest, UnreliableModeHangsOnLostBarrierPacket) {
  host::Cluster cluster(params_with(BarrierReliability::kUnreliable, 2));
  // Drop exactly the first barrier payload on node 0's uplink.
  bool dropped = false;
  cluster.network().uplink(0).set_drop_predicate([&dropped](const net::Packet& p) {
    if (!dropped && net::is_barrier_payload(p.type)) {
      dropped = true;
      return true;
    }
    return false;
  });
  // Node 0's message to node 1 is lost and never resent: node 1 hangs
  // forever (§3.3: "a lost barrier message could hang processes
  // indefinitely"). Node 0 still received node 1's message and completes.
  EXPECT_EQ(run_barriers(cluster, 1, 2, sim::milliseconds(100.0)), 1);
}

TEST(BarrierLossTest, SharedStreamRecoversLostBarrierPacket) {
  host::Cluster cluster(params_with(BarrierReliability::kSharedStream, 2));
  bool dropped = false;
  cluster.network().uplink(0).set_drop_predicate([&dropped](const net::Packet& p) {
    if (!dropped && net::is_barrier_payload(p.type)) {
      dropped = true;
      return true;
    }
    return false;
  });
  EXPECT_EQ(run_barriers(cluster, 5, 2), 2);
  EXPECT_GT(cluster.nic(0).stats().retransmissions, 0u);
}

TEST(BarrierLossTest, SeparateAcksRecoversLostBarrierPacket) {
  host::Cluster cluster(params_with(BarrierReliability::kSeparateAcks, 2));
  bool dropped = false;
  cluster.network().uplink(0).set_drop_predicate([&dropped](const net::Packet& p) {
    if (!dropped && net::is_barrier_payload(p.type)) {
      dropped = true;
      return true;
    }
    return false;
  });
  EXPECT_EQ(run_barriers(cluster, 5, 2), 2);
  EXPECT_GT(cluster.nic(0).stats().retransmissions, 0u);
}

TEST(BarrierLossTest, SeparateAcksSurvivesSustainedLoss) {
  host::Cluster cluster(params_with(BarrierReliability::kSeparateAcks, 4));
  std::uint64_t seed = 11;
  cluster.network().for_each_link([&](net::Link& l) {
    l.set_drop_probability(0.05, seed++);
  });
  EXPECT_EQ(run_barriers(cluster, 10, 4, sim::seconds(2.0)), 4);
}

TEST(BarrierLossTest, SharedStreamSurvivesSustainedLoss) {
  host::Cluster cluster(params_with(BarrierReliability::kSharedStream, 4));
  std::uint64_t seed = 13;
  cluster.network().for_each_link([&](net::Link& l) {
    l.set_drop_probability(0.05, seed++);
  });
  EXPECT_EQ(run_barriers(cluster, 10, 4, sim::seconds(2.0)), 4);
}

TEST(BarrierOrderingTest, SharedStreamPreservesDataBarrierOrder) {
  // §3.3: with the shared stream, a data message sent *before* the barrier
  // is received before the barrier completes at the receiver.
  host::Cluster cluster(params_with(BarrierReliability::kSharedStream, 2));
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};

  std::vector<std::string> order;
  // Node 0: send a data message, then immediately enter the barrier.
  cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> g) -> sim::Task {
    co_await port.send(gm::Endpoint{1, 2}, 64, 42);
    BarrierMember m(port, g, coll::BarrierSpec{coll::Location::kNic,
                                               BarrierAlgorithm::kPairwiseExchange, 2});
    co_await m.run();
  }(*p0, group));
  // Node 1: enter the barrier, then receive; the data event must already be
  // queued before the completion event.
  cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> g,
                         std::vector<std::string>* log) -> sim::Task {
    co_await port.provide_receive_buffer(64);
    nic::BarrierToken tok;
    tok.algorithm = BarrierAlgorithm::kPairwiseExchange;
    tok.peers = {gm::Endpoint{0, 2}};
    co_await port.provide_barrier_buffer();
    (void)co_await port.barrier_send(std::move(tok));
    for (int i = 0; i < 2; ++i) {
      const gm::GmEvent ev = co_await port.receive();
      log->push_back(ev.type == gm::GmEventType::kRecv ? "data" : "barrier");
    }
  }(*p1, group, &order));
  cluster.sim().run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "data");
  EXPECT_EQ(order[1], "barrier");
}

TEST(BarrierOrderingTest, UnreliableModeCanReorderAroundData) {
  // Without the shared stream, a *large* data message sent before the
  // barrier can be overtaken: the barrier message needs no DMA and no ack
  // handshake, so the completion event can beat the data event.
  host::Cluster cluster(params_with(BarrierReliability::kUnreliable, 2));
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};

  std::vector<std::string> order;
  cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> g) -> sim::Task {
    co_await port.send(gm::Endpoint{1, 2}, 64 * 1024, 42);  // big: slow DMA
    BarrierMember m(port, g, coll::BarrierSpec{coll::Location::kNic,
                                               BarrierAlgorithm::kPairwiseExchange, 2});
    co_await m.run();
  }(*p0, group));
  cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> g,
                         std::vector<std::string>* log) -> sim::Task {
    co_await port.provide_receive_buffer(64 * 1024);
    nic::BarrierToken tok;
    tok.algorithm = BarrierAlgorithm::kPairwiseExchange;
    tok.peers = {gm::Endpoint{0, 2}};
    co_await port.provide_barrier_buffer();
    (void)co_await port.barrier_send(std::move(tok));
    for (int i = 0; i < 2; ++i) {
      const gm::GmEvent ev = co_await port.receive();
      log->push_back(ev.type == gm::GmEventType::kRecv ? "data" : "barrier");
    }
  }(*p1, group, &order));
  cluster.sim().run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "barrier");  // overtook the large data message
  EXPECT_EQ(order[1], "data");
}

TEST(BarrierLossTest, AckLossIsToleratedBySeparateAcks) {
  host::Cluster cluster(params_with(BarrierReliability::kSeparateAcks, 2));
  cluster.network().uplink(1).set_drop_predicate(
      [](const net::Packet& p) { return p.type == net::PacketType::kBarrierAck; });
  // Barrier acks from node 1 all vanish; node 0's barrier packets are
  // retransmitted until... acks never arrive, but duplicates are dropped by
  // the barrier seq check and the barrier itself still completes.
  EXPECT_EQ(run_barriers(cluster, 3, 2, sim::seconds(1.0)), 2);
  EXPECT_GT(cluster.nic(1).stats().duplicates_dropped, 0u);
}

}  // namespace
}  // namespace nicbar
