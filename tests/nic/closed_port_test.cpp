// §3.2 closed-port handling: all three policies, including the paper's
// A/A'/B/B' process-resurrection scenario that motivates the adopted
// record-then-reject-on-open policy.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using coll::BarrierMember;
using nic::BarrierAlgorithm;
using nic::ClosedPortPolicy;

host::ClusterParams params_with(ClosedPortPolicy policy) {
  host::ClusterParams cp;
  cp.nodes = 2;
  cp.nic.closed_port_policy = policy;
  return cp;
}

coll::BarrierSpec nic_pe() {
  coll::BarrierSpec s;
  s.location = coll::Location::kNic;
  s.algorithm = BarrierAlgorithm::kPairwiseExchange;
  return s;
}

// Node 0's process starts its barrier immediately; node 1's port opens only
// later. The barrier must still complete under every resend-capable policy.
void run_late_open(ClosedPortPolicy policy, bool expect_initiator_done,
                   bool expect_late_done) {
  host::Cluster cluster(params_with(policy));
  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.make_port(1, 2);  // NOT opened yet

  BarrierMember m0(*p0, group, nic_pe());
  bool done0 = false, done1 = false;
  cluster.sim().spawn([](BarrierMember& m, bool* done) -> sim::Task {
    co_await m.run();
    *done = true;
  }(m0, &done0));

  // Node 1 opens its port 2ms later and then joins the barrier.
  cluster.sim().spawn([](sim::Simulator& sim, gm::Port& port, std::vector<gm::Endpoint> g,
                         bool* done) -> sim::Task {
    co_await sim.delay(2_ms);
    port.open();
    BarrierMember m(port, g, coll::BarrierSpec{coll::Location::kNic,
                                               BarrierAlgorithm::kPairwiseExchange, 2});
    co_await m.run();
    *done = true;
  }(cluster.sim(), *p1, group, &done1));

  cluster.sim().run(sim::SimTime{0} + 100_ms);
  EXPECT_EQ(done0, expect_initiator_done) << "policy " << static_cast<int>(policy);
  EXPECT_EQ(done1, expect_late_done) << "policy " << static_cast<int>(policy);
}

TEST(ClosedPortPolicyTest, RecordThenRejectOnOpenCompletesLateJoin) {
  run_late_open(ClosedPortPolicy::kRecordThenRejectOnOpen, true, true);
}

TEST(ClosedPortPolicyTest, RejectClosedCompletesLateJoin) {
  run_late_open(ClosedPortPolicy::kRejectClosed, true, true);
}

TEST(ClosedPortPolicyTest, ClearOnOpenLosesEarlyMessageAndHangs) {
  // The naive policy wipes the recorded early message when the port opens:
  // the paper's documented drawback — "that does not allow barrier messages
  // to be received for a process that hasn't started". The early initiator
  // still completes (it receives the late joiner's message); the late
  // joiner hangs forever waiting for the wiped message.
  run_late_open(ClosedPortPolicy::kClearOnOpen, true, false);
}

TEST(ClosedPortPolicyTest, RecordThenRejectSendsExactlyOneNack) {
  host::Cluster cluster(params_with(ClosedPortPolicy::kRecordThenRejectOnOpen));
  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.make_port(1, 2);
  BarrierMember m0(*p0, group, nic_pe());
  cluster.sim().spawn([](BarrierMember& m) -> sim::Task { co_await m.run(); }(m0));
  cluster.sim().spawn([](sim::Simulator& sim, gm::Port& port, std::vector<gm::Endpoint> g)
                          -> sim::Task {
    co_await sim.delay(1_ms);
    port.open();
    BarrierMember m(port, g, coll::BarrierSpec{coll::Location::kNic,
                                               BarrierAlgorithm::kPairwiseExchange, 2});
    co_await m.run();
  }(cluster.sim(), *p1, group));
  cluster.sim().run(sim::SimTime{0} + 100_ms);
  EXPECT_EQ(cluster.nic(1).stats().barrier_nacks_sent, 1u);
  EXPECT_EQ(cluster.nic(0).stats().barrier_resends, 1u);
}

TEST(ClosedPortPolicyTest, RejectClosedRetriesUntilOpen) {
  // With kRejectClosed the sender may need several resends (unbounded in
  // general — each rejection triggers another attempt until the port opens).
  host::ClusterParams cp = params_with(ClosedPortPolicy::kRejectClosed);
  cp.nic.barrier_resend_delay = sim::microseconds(100.0);
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.make_port(1, 2);
  BarrierMember m0(*p0, group, nic_pe());
  bool done = false;
  cluster.sim().spawn([](BarrierMember& m, bool* d) -> sim::Task {
    co_await m.run();
    *d = true;
  }(m0, &done));
  cluster.sim().spawn([](sim::Simulator& sim, gm::Port& port, std::vector<gm::Endpoint> g)
                          -> sim::Task {
    co_await sim.delay(2_ms);
    port.open();
    BarrierMember m(port, g, coll::BarrierSpec{coll::Location::kNic,
                                               BarrierAlgorithm::kPairwiseExchange, 2});
    co_await m.run();
  }(cluster.sim(), *p1, group));
  cluster.sim().run(sim::SimTime{0} + 100_ms);
  EXPECT_TRUE(done);
  EXPECT_GT(cluster.nic(1).stats().barrier_nacks_sent, 2u);   // repeated rejects
  EXPECT_GT(cluster.nic(0).stats().barrier_resends, 2u);
}

TEST(ClosedPortPolicyTest, PaperScenarioStaleMessageDoesNotLeakToNewProcess) {
  // The §3.2 motivating bug: process A (node 0) barriers with B (node 1);
  // B is dead, so A's message is recorded against B's closed port. Both die;
  // A' and B' reuse the same endpoints. Under record-then-reject, B's NIC
  // flushes the stale record with a NACK when B' opens the port; A' has NOT
  // initiated any barrier (the old initiator A closed), so nothing is
  // resent — B' must NOT complete a barrier from A's stale message alone.
  host::Cluster cluster(params_with(ClosedPortPolicy::kRecordThenRejectOnOpen));
  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};

  auto port_a = cluster.open_port(0, 2);
  auto port_b = cluster.make_port(1, 2);  // B never starts

  // A initiates and then dies (closes its port mid-barrier).
  BarrierMember ma(*port_a, group, nic_pe());
  cluster.sim().spawn([](sim::Simulator& sim, gm::Port& port) -> sim::Task {
    nic::BarrierToken tok;
    tok.algorithm = BarrierAlgorithm::kPairwiseExchange;
    tok.peers = {gm::Endpoint{1, 2}};
    co_await port.provide_barrier_buffer();
    (void)co_await port.barrier_send(std::move(tok));
    co_await sim.delay(500_us);  // message reaches node 1, recorded for closed port
    port.close();                // A dies
  }(cluster.sim(), *port_a));

  // Later, B' starts on the same endpoint and initiates a barrier with A''s
  // endpoint. A' exists but never initiates: B' must hang, not complete off
  // the stale record.
  bool b_prime_done = false;
  cluster.sim().spawn([](sim::Simulator& sim, gm::Port& port, std::vector<gm::Endpoint> g,
                         bool* done) -> sim::Task {
    co_await sim.delay(2_ms);
    port.open();  // flush: NACK goes to node 0 port 2 — which is closed now
    BarrierMember m(port, g, coll::BarrierSpec{coll::Location::kNic,
                                               BarrierAlgorithm::kPairwiseExchange, 2});
    co_await m.run();
    *done = true;
  }(cluster.sim(), *port_b, group, &b_prime_done));

  cluster.sim().run(sim::SimTime{0} + 50_ms);
  EXPECT_FALSE(b_prime_done) << "B' completed a barrier from a stale message (§3.2 bug)";
  EXPECT_EQ(cluster.nic(1).stats().barrier_nacks_sent, 1u);
  EXPECT_EQ(cluster.nic(0).stats().barrier_resends, 0u);  // A closed: no resend
}

TEST(ClosedPortPolicyTest, ReopenedInitiatorStillResendsAfterCompletion) {
  // Root completes a GB barrier and broadcasts; one child's port was closed
  // at broadcast time. When the child reopens, its NACK must be answered
  // from the root's *last completed* barrier token.
  host::Cluster cluster(params_with(ClosedPortPolicy::kRecordThenRejectOnOpen));
  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};
  auto root = cluster.open_port(0, 2);
  auto child = cluster.make_port(1, 2);

  // Manually drive: child joins first (sends gather), root then runs,
  // child closes before the bcast arrives, reopens later.
  bool child_done = false;
  cluster.sim().spawn([](sim::Simulator& sim, gm::Port& port, bool* done) -> sim::Task {
    port.open();
    // Child: send gather, then close before the broadcast can arrive, then
    // reopen and wait for the re-delivered broadcast.
    nic::BarrierToken tok;
    tok.algorithm = BarrierAlgorithm::kGatherBroadcast;
    tok.parent = gm::Endpoint{0, 2};
    co_await port.provide_barrier_buffer();
    (void)co_await port.barrier_send(std::move(tok));
    // Close the instant our gather has left the NIC — the parent's
    // broadcast (one network round trip away) will find the port closed.
    while (port.nic().stats().barrier_packets_sent < 1) co_await sim.delay(1_us);
    port.close();
    co_await sim.delay(2_ms);
    port.open();
    nic::BarrierToken tok2;
    tok2.algorithm = BarrierAlgorithm::kGatherBroadcast;
    tok2.parent = gm::Endpoint{0, 2};
    co_await port.provide_barrier_buffer();
    (void)co_await port.barrier_send(std::move(tok2));
    (void)co_await port.receive();
    *done = true;
  }(cluster.sim(), *child, &child_done));

  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    nic::BarrierToken tok;
    tok.algorithm = BarrierAlgorithm::kGatherBroadcast;
    tok.children = {gm::Endpoint{1, 2}};
    co_await port.provide_barrier_buffer();
    (void)co_await port.barrier_send(std::move(tok));
    (void)co_await port.receive();  // root completes once the gather arrives
  }(*root));

  cluster.sim().run(sim::SimTime{0} + 100_ms);
  // The reopened child's barrier epoch differs from the stale bcast's epoch;
  // the root resends the bcast for the *old* epoch, whose record the child's
  // new barrier cannot consume as its own completion... unless epochs align.
  // Here both sides used epoch 0 then 1; the child's second barrier (epoch 1)
  // must be completed by the resent epoch-0 bcast being treated as the
  // parent's broadcast for the pending barrier: the firmware matches by
  // endpoint (paper §3.1 bit semantics), so the child completes.
  EXPECT_TRUE(child_done);
  EXPECT_EQ(cluster.nic(0).stats().barrier_resends, 1u);
}

}  // namespace
}  // namespace nicbar
