// Token/operator unit tests.
#include "nic/tokens.hpp"

#include "nic/config.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace nicbar::nic {
namespace {

TEST(ReduceOpTest, Sum) {
  EXPECT_EQ(apply_reduce_op(ReduceOp::kSum, 3, 4), 7);
  EXPECT_EQ(apply_reduce_op(ReduceOp::kSum, -3, 3), 0);
}

TEST(ReduceOpTest, Prod) {
  EXPECT_EQ(apply_reduce_op(ReduceOp::kProd, 3, 4), 12);
  EXPECT_EQ(apply_reduce_op(ReduceOp::kProd, -3, 4), -12);
  EXPECT_EQ(apply_reduce_op(ReduceOp::kProd, 0, 99), 0);
}

TEST(ReduceOpTest, MinMax) {
  EXPECT_EQ(apply_reduce_op(ReduceOp::kMin, 3, 4), 3);
  EXPECT_EQ(apply_reduce_op(ReduceOp::kMin, -9, 4), -9);
  EXPECT_EQ(apply_reduce_op(ReduceOp::kMax, 3, 4), 4);
  EXPECT_EQ(apply_reduce_op(ReduceOp::kMax, std::numeric_limits<std::int64_t>::min(), 0), 0);
}

TEST(ReduceOpTest, Bitwise) {
  EXPECT_EQ(apply_reduce_op(ReduceOp::kBitAnd, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(apply_reduce_op(ReduceOp::kBitOr, 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(apply_reduce_op(ReduceOp::kBitOr, 0, 0x5A5A), 0x5A5A);  // bcast identity
}

TEST(ReduceOpTest, Associativity) {
  for (ReduceOp op : {ReduceOp::kSum, ReduceOp::kProd, ReduceOp::kMin, ReduceOp::kMax,
                      ReduceOp::kBitAnd, ReduceOp::kBitOr}) {
    const std::int64_t a = 13, b = -7, c = 255;
    EXPECT_EQ(apply_reduce_op(op, apply_reduce_op(op, a, b), c),
              apply_reduce_op(op, a, apply_reduce_op(op, b, c)))
        << to_string(op);
  }
}

TEST(ReduceOpTest, Names) {
  EXPECT_STREQ(to_string(ReduceOp::kSum), "sum");
  EXPECT_STREQ(to_string(ReduceOp::kProd), "prod");
  EXPECT_STREQ(to_string(ReduceOp::kMin), "min");
  EXPECT_STREQ(to_string(ReduceOp::kMax), "max");
  EXPECT_STREQ(to_string(ReduceOp::kBitAnd), "band");
  EXPECT_STREQ(to_string(ReduceOp::kBitOr), "bor");
}

TEST(BarrierAlgorithmTest, Names) {
  EXPECT_STREQ(to_string(BarrierAlgorithm::kPairwiseExchange), "PE");
  EXPECT_STREQ(to_string(BarrierAlgorithm::kGatherBroadcast), "GB");
}

TEST(BarrierTokenTest, RootDetection) {
  BarrierToken t;
  EXPECT_TRUE(t.is_root());  // default parent is the invalid node
  t.parent = Endpoint{3, 1};
  EXPECT_FALSE(t.is_root());
}

TEST(ReduceTokenTest, RootDetection) {
  ReduceToken t;
  EXPECT_TRUE(t.is_root());
  t.parent = Endpoint{0, 0};
  EXPECT_FALSE(t.is_root());
}

TEST(EndpointTest, OrderingAndEquality) {
  const Endpoint a{1, 2}, b{1, 3}, c{2, 0};
  EXPECT_EQ(a, (Endpoint{1, 2}));
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(ConfigTest, FactoryModels) {
  EXPECT_EQ(lanai43().model, "LANai-4.3");
  EXPECT_DOUBLE_EQ(lanai43().clock_mhz, 33.0);
  EXPECT_EQ(lanai72().model, "LANai-7.2");
  EXPECT_DOUBLE_EQ(lanai72().clock_mhz, 66.0);
  // Same firmware: identical cycle costs.
  EXPECT_EQ(lanai43().recv_cycles, lanai72().recv_cycles);
  EXPECT_EQ(lanai43().barrier_pe_cycles, lanai72().barrier_pe_cycles);
  // Faster host interface on the 7.x series.
  EXPECT_GT(lanai72().pci_bandwidth_mbps, lanai43().pci_bandwidth_mbps);
}

TEST(ConfigTest, CyclesHelper) {
  const NicConfig c = lanai43();
  EXPECT_EQ(c.cycles(33).ps(), sim::cycles_at_mhz(33, 33.0).ps());
  EXPECT_NEAR(c.cycles(330).us(), 10.0, 0.001);
}

}  // namespace
}  // namespace nicbar::nic
