// MTU segmentation and reassembly: GM fragments messages above the MTU;
// the in-order connection stream makes reassembly trivial per sender.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using gm::GmEvent;
using nic::GmEventType;

host::ClusterParams params(std::int64_t mtu = 4096) {
  host::ClusterParams p;
  p.nodes = 2;
  p.nic.mtu_bytes = mtu;
  return p;
}

struct Transfer {
  std::vector<GmEvent> events;
  std::uint64_t wire_packets = 0;
  double elapsed_us = 0;
};

Transfer send_one(host::ClusterParams p, std::int64_t bytes, int count = 1) {
  host::Cluster cluster(p);
  auto src = cluster.open_port(0, 2);
  auto dst = cluster.open_port(1, 2);
  Transfer out;
  cluster.sim().spawn([](gm::Port& port, std::int64_t b, int n,
                         std::vector<GmEvent>* ev) -> sim::Task {
    for (int i = 0; i < n; ++i) co_await port.provide_receive_buffer(b);
    for (int i = 0; i < n; ++i) ev->push_back(co_await port.receive());
  }(*dst, bytes, count, &out.events));
  cluster.sim().spawn([](gm::Port& port, std::int64_t b, int n) -> sim::Task {
    for (int i = 0; i < n; ++i) {
      co_await port.send(gm::Endpoint{1, 2}, b, static_cast<std::uint64_t>(100 + i));
    }
  }(*src, bytes, count));
  cluster.sim().run();
  out.wire_packets = cluster.nic(0).stats().data_sent;
  out.elapsed_us = cluster.sim().now().us();
  return out;
}

TEST(SegmentationTest, SmallMessageIsOnePacket) {
  const Transfer t = send_one(params(), 512);
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_EQ(t.events[0].bytes, 512);
  EXPECT_EQ(t.wire_packets, 1u);
}

TEST(SegmentationTest, ExactMtuIsOnePacket) {
  const Transfer t = send_one(params(4096), 4096);
  EXPECT_EQ(t.wire_packets, 1u);
}

TEST(SegmentationTest, LargeMessageFragments) {
  const Transfer t = send_one(params(4096), 10'000);
  ASSERT_EQ(t.events.size(), 1u);          // host still sees ONE event
  EXPECT_EQ(t.events[0].bytes, 10'000);    // with the full message size
  EXPECT_EQ(t.events[0].tag, 100u);
  EXPECT_EQ(t.wire_packets, 3u);           // ceil(10000/4096)
}

TEST(SegmentationTest, FragmentCountScalesWithMtu) {
  EXPECT_EQ(send_one(params(1024), 8192).wire_packets, 8u);
  EXPECT_EQ(send_one(params(2048), 8192).wire_packets, 4u);
  EXPECT_EQ(send_one(params(8192), 8192).wire_packets, 1u);
}

TEST(SegmentationTest, PipeliningBeatsOneGiantPacket) {
  // With fragments, the wire and PCI overlap across fragments; a single
  // giant packet serializes DMA then wire. Segmentation should not be
  // slower (and is typically faster).
  const double fragmented = send_one(params(4096), 64 * 1024).elapsed_us;
  const double monolithic = send_one(params(1 << 20), 64 * 1024).elapsed_us;
  EXPECT_LE(fragmented, monolithic * 1.05);
}

TEST(SegmentationTest, BackToBackLargeMessagesStayOrdered) {
  const Transfer t = send_one(params(4096), 9000, 5);
  ASSERT_EQ(t.events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(t.events[static_cast<std::size_t>(i)].tag,
              static_cast<std::uint64_t>(100 + i));
    EXPECT_EQ(t.events[static_cast<std::size_t>(i)].bytes, 9000);
  }
}

TEST(SegmentationTest, LostFragmentRecoveredByGoBackN) {
  host::ClusterParams p = params(4096);
  p.nic.retransmit_timeout = 300_us;
  host::Cluster cluster(p);
  // Drop the middle fragment once.
  bool dropped = false;
  cluster.network().uplink(0).set_drop_predicate([&dropped](const net::Packet& pk) {
    if (!dropped && pk.type == net::PacketType::kData && pk.frag_index == 1) {
      dropped = true;
      return true;
    }
    return false;
  });
  auto src = cluster.open_port(0, 2);
  auto dst = cluster.open_port(1, 2);
  std::vector<GmEvent> got;
  cluster.sim().spawn([](gm::Port& port, std::vector<GmEvent>* ev) -> sim::Task {
    co_await port.provide_receive_buffer(12'000);
    ev->push_back(co_await port.receive());
  }(*dst, &got));
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.send(gm::Endpoint{1, 2}, 12'000, 7);
  }(*src));
  cluster.sim().run(sim::SimTime{0} + 50_ms);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].bytes, 12'000);
  EXPECT_GT(cluster.nic(0).stats().retransmissions, 0u);
}

TEST(SegmentationTest, OneBufferPerMessageNotPerFragment) {
  // A 3-fragment message must consume exactly one receive token.
  host::Cluster cluster(params(4096));
  auto src = cluster.open_port(0, 2);
  auto dst = cluster.open_port(1, 2);
  std::vector<GmEvent> got;
  cluster.sim().spawn([](gm::Port& port, std::vector<GmEvent>* ev) -> sim::Task {
    co_await port.provide_receive_buffer(12'000);
    co_await port.provide_receive_buffer(12'000);
    ev->push_back(co_await port.receive());
    ev->push_back(co_await port.receive());
  }(*dst, &got));
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.send(gm::Endpoint{1, 2}, 10'000, 1);
    co_await port.send(gm::Endpoint{1, 2}, 10'000, 2);
  }(*src));
  cluster.sim().run();
  ASSERT_EQ(got.size(), 2u);  // both messages delivered => tokens sufficed
  EXPECT_EQ(cluster.nic(1).stats().no_token_drops, 0u);
}

TEST(SegmentationTest, InterleavedSendersReassembleIndependently) {
  host::ClusterParams p;
  p.nodes = 3;
  p.nic.mtu_bytes = 2048;
  host::Cluster cluster(p);
  auto a = cluster.open_port(0, 2);
  auto b = cluster.open_port(1, 2);
  auto sink = cluster.open_port(2, 2);
  std::vector<GmEvent> got;
  cluster.sim().spawn([](gm::Port& port, std::vector<GmEvent>* ev) -> sim::Task {
    for (int i = 0; i < 2; ++i) co_await port.provide_receive_buffer(10'000);
    for (int i = 0; i < 2; ++i) ev->push_back(co_await port.receive());
  }(*sink, &got));
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.send(gm::Endpoint{2, 2}, 9'000, 11);
  }(*a));
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.send(gm::Endpoint{2, 2}, 7'000, 22);
  }(*b));
  cluster.sim().run();
  ASSERT_EQ(got.size(), 2u);
  std::int64_t total = got[0].bytes + got[1].bytes;
  EXPECT_EQ(total, 16'000);
  EXPECT_NE(got[0].tag, got[1].tag);
}

}  // namespace
}  // namespace nicbar
