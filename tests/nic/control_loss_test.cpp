// Loss aimed exclusively at control packets (acks, nacks, barrier acks):
// payloads always arrive, so progress never depends on resending data — it
// depends on the reliability machinery coping with lost acknowledgments
// (retransmit timers firing, cumulative acks catching up, duplicate
// suppression eating the resends). Exercised across all three
// BarrierReliability modes via Link::set_drop_predicate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;

struct ControlLossResult {
  std::uint64_t barriers_completed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t retransmit_timeouts = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t control_dropped = 0;
};

/// Runs `reps` NIC-PE barriers on 4 nodes while every link drops every
/// `drop_every`-th control packet it carries (deterministic, no RNG).
ControlLossResult run_control_loss(nic::BarrierReliability mode, int reps, int drop_every) {
  constexpr std::size_t kNodes = 4;
  host::ClusterParams cp;
  cp.nodes = kNodes;
  cp.nic.barrier_reliability = mode;
  cp.nic.retransmit_timeout = 200_us;
  host::Cluster cluster(cp);

  auto counters = std::make_shared<std::vector<std::uint64_t>>();
  auto dropped = std::make_shared<std::uint64_t>(0);
  cluster.network().for_each_link([&](net::Link& l) {
    const std::size_t idx = counters->size();
    counters->push_back(0);
    l.set_drop_predicate([counters, dropped, idx, drop_every](const net::Packet& p) {
      if (!net::is_control(p.type)) return false;
      if (++(*counters)[idx] % static_cast<std::uint64_t>(drop_every) != 0) return false;
      ++*dropped;
      return true;
    });
  });

  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < kNodes; ++i) group.push_back(gm::Endpoint{i, 2});
  coll::BarrierSpec spec;
  spec.location = coll::Location::kNic;
  spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::BarrierMember>> members;
  for (net::NodeId i = 0; i < kNodes; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    members.push_back(std::make_unique<coll::BarrierMember>(*ports.back(), group, spec));
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    cluster.sim().spawn([](coll::BarrierMember& m, int r) -> sim::Task {
      for (int k = 0; k < r; ++k) co_await m.run();
    }(*members[i], reps));
  }
  cluster.sim().run(sim::SimTime{0} + sim::seconds(2.0));

  ControlLossResult res;
  res.control_dropped = *dropped;
  for (net::NodeId i = 0; i < kNodes; ++i) {
    const nic::NicStats& s = cluster.nic(i).stats();
    res.barriers_completed += s.barriers_completed;
    res.retransmissions += s.retransmissions;
    res.retransmit_timeouts += s.retransmit_timeouts;
    res.duplicates_dropped += s.duplicates_dropped;
  }
  return res;
}

TEST(ControlLossTest, UnreliableModeDoesNotCareAboutControlLoss) {
  // An unreliable barrier generates no control traffic of its own, and its
  // progress never depends on acks — every barrier must still complete.
  const ControlLossResult r =
      run_control_loss(nic::BarrierReliability::kUnreliable, 25, 2);
  EXPECT_EQ(r.barriers_completed, 4u * 25u);
  EXPECT_EQ(r.retransmit_timeouts, 0u);
}

TEST(ControlLossTest, SharedStreamRecoversFromLostAcks) {
  // Barrier packets ride the sequenced data stream: a lost ack leaves the
  // sender's sent-list populated until the retransmit timer fires; the
  // receiver then drops the duplicates and re-acks.
  const ControlLossResult r =
      run_control_loss(nic::BarrierReliability::kSharedStream, 25, 3);
  EXPECT_EQ(r.barriers_completed, 4u * 25u);
  EXPECT_GT(r.control_dropped, 0u);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_GT(r.duplicates_dropped, 0u);
}

TEST(ControlLossTest, SeparateAcksRecoverFromLostBarrierAcks) {
  // The dedicated barrier-ack stream loses acks instead: the barrier
  // retransmit timer must re-drive the handshake.
  const ControlLossResult r =
      run_control_loss(nic::BarrierReliability::kSeparateAcks, 25, 3);
  EXPECT_EQ(r.barriers_completed, 4u * 25u);
  EXPECT_GT(r.control_dropped, 0u);
  EXPECT_GT(r.retransmit_timeouts, 0u);
  EXPECT_GT(r.retransmissions, 0u);
}

TEST(ControlLossTest, DeterministicAcrossRuns) {
  const ControlLossResult a =
      run_control_loss(nic::BarrierReliability::kSharedStream, 15, 3);
  const ControlLossResult b =
      run_control_loss(nic::BarrierReliability::kSharedStream, 15, 3);
  EXPECT_EQ(a.control_dropped, b.control_dropped);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.barriers_completed, b.barriers_completed);
}

}  // namespace
}  // namespace nicbar
