// MCP engine mechanics: DMA/PCI arbitration, processor serialization,
// cost scaling with message size and clock, and the NIC counters.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using gm::GmEvent;
using nic::GmEventType;

host::ClusterParams two_nodes(nic::NicConfig cfg = nic::lanai43()) {
  host::ClusterParams p;
  p.nodes = 2;
  p.nic = std::move(cfg);
  return p;
}

double one_way_us(host::ClusterParams p, std::int64_t bytes) {
  host::Cluster cluster(p);
  auto src = cluster.open_port(0, 2);
  auto dst = cluster.open_port(1, 2);
  sim::SimTime arrived{};
  cluster.sim().spawn([](gm::Port& port, std::int64_t b, sim::SimTime* out,
                         sim::Simulator& sim) -> sim::Task {
    co_await port.provide_receive_buffer(b);
    (void)co_await port.receive();
    *out = sim.now();
  }(*dst, bytes, &arrived, cluster.sim()));
  cluster.sim().spawn([](gm::Port& port, std::int64_t b) -> sim::Task {
    co_await port.send(gm::Endpoint{1, 2}, b);
  }(*src, bytes));
  cluster.sim().run();
  return arrived.us();
}

TEST(McpEngineTest, LatencyGrowsWithMessageSize) {
  const double small = one_way_us(two_nodes(), 8);
  const double medium = one_way_us(two_nodes(), 4 * 1024);
  const double large = one_way_us(two_nodes(), 64 * 1024);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  // 64KB is segmented into 16 MTU fragments whose PCI crossings (132 MB/s,
  // ~497us total each way) pipeline with the wire (~410us): the slowest
  // stage dominates, several hundred us beyond the small message.
  EXPECT_GT(large - small, 400.0);
}

TEST(McpEngineTest, DoubleClockHalvesOnlyNicShare) {
  const double slow = one_way_us(two_nodes(nic::lanai43()), 8);
  nic::NicConfig fast = nic::lanai43();
  fast.clock_mhz = 66.0;  // keep 4.3's PCI so only the processor speeds up
  const double quick = one_way_us(two_nodes(fast), 8);
  EXPECT_LT(quick, slow);
  EXPECT_GT(quick, slow / 2.0);  // host/wire/PCI share does not halve
}

TEST(McpEngineTest, PciBusSharedBetweenSdmaAndRdma) {
  // Node 0 simultaneously sends (SDMA uses PCI) and receives (RDMA uses
  // PCI). Both crossings serialize on the one bus; the PCI busy-time equals
  // the sum of the transfers.
  host::Cluster cluster(two_nodes());
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.provide_receive_buffer(32 * 1024);
    co_await port.send(gm::Endpoint{1, 2}, 32 * 1024);
    (void)co_await port.receive();
  }(*p0));
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.provide_receive_buffer(32 * 1024);
    co_await port.send(gm::Endpoint{0, 2}, 32 * 1024);
    (void)co_await port.receive();
  }(*p1));
  cluster.sim().run();
  const sim::BusyServer& pci = cluster.node(0).pci;
  // 32KB segments into 8 MTU fragments: 8 SDMA + 8 RDMA crossings share
  // the one bus; total transfer time is the same 2 x 32KB plus setups.
  EXPECT_EQ(pci.jobs(), 16u);
  EXPECT_NEAR(pci.busy_total().us(), 2 * 32768.0 / 132.0 + 16 * 0.3, 6.0);
}

TEST(McpEngineTest, NicProcessorSerializesAllEngines) {
  // Many concurrent receives on one NIC: the processor's busy time must
  // be close to jobs x per-job cost, and utilization is meaningful.
  host::ClusterParams p;
  p.nodes = 5;
  host::Cluster cluster(p);
  std::vector<std::unique_ptr<gm::Port>> ports;
  auto sink = cluster.open_port(0, 2);
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    for (int i = 0; i < 40; ++i) co_await port.provide_receive_buffer(64);
    for (int i = 0; i < 40; ++i) (void)co_await port.receive();
  }(*sink));
  for (net::NodeId i = 1; i < 5; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    cluster.sim().spawn([](gm::Port& port) -> sim::Task {
      for (int k = 0; k < 10; ++k) co_await port.send(gm::Endpoint{0, 2}, 64);
    }(*ports.back()));
  }
  cluster.sim().run();
  const sim::BusyServer& proc = cluster.nic(0).processor().stats();
  // 40 receives (480cy) + 40 acks sent (30cy) + 40 RDMA setups (170cy) at
  // 33MHz is ~824us of processor time, plus queue delays.
  EXPECT_GT(proc.busy_total().us(), 700.0);
  EXPECT_GT(proc.queue_delay_total().us(), 0.0);
}

TEST(McpEngineTest, CountersBalanceAcrossANicPair) {
  host::Cluster cluster(two_nodes());
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    for (int i = 0; i < 25; ++i) co_await port.provide_receive_buffer(64);
    for (int i = 0; i < 25; ++i) (void)co_await port.receive();
  }(*p1));
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    for (int i = 0; i < 25; ++i) co_await port.send(gm::Endpoint{1, 2}, 64);
  }(*p0));
  cluster.sim().run();
  const nic::NicStats& s0 = cluster.nic(0).stats();
  const nic::NicStats& s1 = cluster.nic(1).stats();
  EXPECT_EQ(s0.data_sent, 25u);
  EXPECT_EQ(s1.data_received, 25u);
  EXPECT_EQ(s1.acks_sent, 25u);
  EXPECT_EQ(s0.acks_received, 25u);
  EXPECT_EQ(s1.events_delivered, 25u);
  EXPECT_EQ(s0.retransmissions, 0u);
  EXPECT_EQ(s0.nacks_received, 0u);
}

TEST(McpEngineTest, SentCallbackFiresOnAck) {
  host::Cluster cluster(two_nodes());
  auto p1 = cluster.open_port(1, 2);
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.provide_receive_buffer(64);
    (void)co_await port.receive();
  }(*p1));
  // Drive the NIC directly to exercise the send-token completion callback.
  bool sent = false;
  sim::SimTime sent_at{};
  nic::SendToken tok;
  tok.src_port = 2;
  tok.dst = gm::Endpoint{1, 2};
  tok.bytes = 64;
  sim::Simulator& sim = cluster.sim();
  tok.on_sent = [&sent, &sent_at, &sim] {
    sent = true;
    sent_at = sim.now();
  };
  sim::Mailbox<GmEvent> events(cluster.sim());
  cluster.nic(0).open_port(2, &events);
  cluster.nic(0).post_send_token(std::move(tok));
  cluster.sim().run();
  EXPECT_TRUE(sent);
  // Token return needs the round trip: data there, ack back.
  EXPECT_GT(sent_at.us(), 20.0);
}

TEST(McpEngineTest, RetransmissionTimerRecoversAckLossEventually) {
  host::ClusterParams p = two_nodes();
  p.nic.retransmit_timeout = 200_us;
  host::Cluster cluster(p);
  // Kill the first ack only: sender retires the token after one timeout.
  int acks_seen = 0;
  cluster.network().uplink(1).set_drop_predicate([&acks_seen](const net::Packet& pk) {
    if (pk.type == net::PacketType::kAck) {
      ++acks_seen;
      return acks_seen == 1;
    }
    return false;
  });
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  std::vector<GmEvent> got;
  cluster.sim().spawn([](gm::Port& port, std::vector<GmEvent>* out) -> sim::Task {
    co_await port.provide_receive_buffer(64);
    out->push_back(co_await port.receive());
  }(*p1, &got));
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.send(gm::Endpoint{1, 2}, 64);
  }(*p0));
  cluster.sim().run(sim::SimTime{0} + 10_ms);
  EXPECT_EQ(got.size(), 1u);
  EXPECT_GT(cluster.nic(0).stats().retransmissions, 0u);
  EXPECT_GT(cluster.nic(1).stats().duplicates_dropped, 0u);
}

TEST(McpEngineTest, MaxRetransmissionsGivesUp) {
  host::ClusterParams p = two_nodes();
  p.nic.retransmit_timeout = 100_us;
  p.nic.max_retransmissions = 3;
  host::Cluster cluster(p);
  // Node 1 is unreachable: everything on node 0's uplink vanishes.
  cluster.network().uplink(0).set_drop_probability(1.0, 5);
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.send(gm::Endpoint{1, 2}, 64);
  }(*p0));
  cluster.sim().run(sim::SimTime{0} + 50_ms);
  // 3 retries then give up — not an infinite storm.
  EXPECT_EQ(cluster.nic(0).stats().retransmissions, 3u);
}

}  // namespace
}  // namespace nicbar
