// NIC-assisted multicast (§7 related work): single PCI crossing, NIC-side
// replication, delivery to every destination.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/cluster.hpp"

namespace nicbar {
namespace {

using gm::GmEvent;

sim::Task mcast_sink(gm::Port& port, std::vector<GmEvent>* out, int count) {
  for (int i = 0; i < count; ++i) co_await port.provide_receive_buffer(4096);
  for (int i = 0; i < count; ++i) out->push_back(co_await port.receive());
}

TEST(MulticastTest, DeliversToAllDestinations) {
  host::ClusterParams p;
  p.nodes = 8;
  host::Cluster cluster(p);
  auto src = cluster.open_port(0, 2);
  std::vector<std::unique_ptr<gm::Port>> sinks;
  std::vector<std::vector<GmEvent>> got(8);
  std::vector<gm::Endpoint> dests;
  for (net::NodeId i = 1; i < 8; ++i) {
    sinks.push_back(cluster.open_port(i, 2));
    cluster.sim().spawn(mcast_sink(*sinks.back(), &got[i], 1));
    dests.push_back(gm::Endpoint{i, 2});
  }
  cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> d) -> sim::Task {
    co_await port.multicast(std::move(d), 256, 99, 1234);
  }(*src, dests));
  cluster.sim().run();
  for (int i = 1; i < 8; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)].size(), 1u) << "dest " << i;
    EXPECT_EQ(got[static_cast<std::size_t>(i)][0].tag, 99u);
    EXPECT_EQ(got[static_cast<std::size_t>(i)][0].value, 1234);
    EXPECT_EQ(got[static_cast<std::size_t>(i)][0].bytes, 256);
  }
  EXPECT_EQ(cluster.nic(0).stats().multicasts_sent, 1u);
  EXPECT_EQ(cluster.nic(0).stats().data_sent, 7u);
}

TEST(MulticastTest, OnePciCrossingRegardlessOfFanout) {
  host::ClusterParams p;
  p.nodes = 8;
  host::Cluster cluster(p);
  auto src = cluster.open_port(0, 2);
  std::vector<std::unique_ptr<gm::Port>> sinks;
  std::vector<std::vector<GmEvent>> got(8);
  std::vector<gm::Endpoint> dests;
  for (net::NodeId i = 1; i < 8; ++i) {
    sinks.push_back(cluster.open_port(i, 2));
    cluster.sim().spawn(mcast_sink(*sinks.back(), &got[i], 1));
    dests.push_back(gm::Endpoint{i, 2});
  }
  cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> d) -> sim::Task {
    co_await port.multicast(std::move(d), 2048);
  }(*src, dests));
  cluster.sim().run();
  EXPECT_EQ(cluster.node(0).pci.jobs(), 1u);  // one SDMA crossing for 7 dests
}

TEST(MulticastTest, FasterThanHostSendLoop) {
  auto run = [](bool use_multicast) {
    host::ClusterParams p;
    p.nodes = 8;
    host::Cluster cluster(p);
    auto src = cluster.open_port(0, 2);
    std::vector<std::unique_ptr<gm::Port>> sinks;
    std::vector<std::vector<GmEvent>> got(8);
    std::vector<gm::Endpoint> dests;
    std::vector<sim::SimTime> done(8);
    for (net::NodeId i = 1; i < 8; ++i) {
      sinks.push_back(cluster.open_port(i, 2));
      cluster.sim().spawn([](sim::Simulator& sim, gm::Port& port, std::vector<GmEvent>* out,
                             sim::SimTime* when) -> sim::Task {
        co_await port.provide_receive_buffer(4096);
        out->push_back(co_await port.receive());
        *when = sim.now();
      }(cluster.sim(), *sinks.back(), &got[i], &done[i]));
      dests.push_back(gm::Endpoint{i, 2});
    }
    if (use_multicast) {
      cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> d) -> sim::Task {
        co_await port.multicast(std::move(d), 2048);
      }(*src, dests));
    } else {
      cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> d) -> sim::Task {
        for (const gm::Endpoint& e : d) co_await port.send(e, 2048);
      }(*src, dests));
    }
    cluster.sim().run();
    sim::SimTime last{0};
    for (const sim::SimTime& t : done) {
      if (t > last) last = t;
    }
    return last.us();
  };
  const double nic_us = run(true);
  const double host_us = run(false);
  EXPECT_LT(nic_us, host_us);
}

TEST(MulticastTest, OversizedPayloadRejected) {
  host::ClusterParams p;
  p.nodes = 2;
  host::Cluster cluster(p);
  nic::MulticastToken tok;
  tok.bytes = p.nic.mtu_bytes + 1;
  tok.destinations = {gm::Endpoint{1, 2}};
  EXPECT_THROW(cluster.nic(0).post_multicast_token(std::move(tok)), std::invalid_argument);
}

TEST(MulticastTest, EmptyDestinationListIsANoop) {
  host::ClusterParams p;
  p.nodes = 2;
  host::Cluster cluster(p);
  auto src = cluster.open_port(0, 2);
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.multicast({}, 64);
  }(*src));
  cluster.sim().run();
  EXPECT_EQ(cluster.nic(0).stats().data_sent, 0u);
  EXPECT_EQ(cluster.nic(0).stats().multicasts_sent, 1u);
}

TEST(MulticastTest, ReliableUnderLoss) {
  host::ClusterParams p;
  p.nodes = 4;
  p.nic.retransmit_timeout = sim::microseconds(300.0);
  host::Cluster cluster(p);
  cluster.network().uplink(0).set_drop_probability(0.3, 17);
  auto src = cluster.open_port(0, 2);
  std::vector<std::unique_ptr<gm::Port>> sinks;
  std::vector<std::vector<GmEvent>> got(4);
  std::vector<gm::Endpoint> dests;
  for (net::NodeId i = 1; i < 4; ++i) {
    sinks.push_back(cluster.open_port(i, 2));
    cluster.sim().spawn(mcast_sink(*sinks.back(), &got[i], 3));
    dests.push_back(gm::Endpoint{i, 2});
  }
  cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> d) -> sim::Task {
    for (int k = 0; k < 3; ++k) co_await port.multicast(d, 128, static_cast<std::uint64_t>(k));
  }(*src, dests));
  cluster.sim().run(sim::SimTime{0} + sim::milliseconds(100.0));
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)].size(), 3u);
    // In-order per destination despite loss.
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(got[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)].tag,
                static_cast<std::uint64_t>(k));
    }
  }
}

}  // namespace
}  // namespace nicbar
