// Churn soak: barrier-group lifecycle at scale. 64 nodes partitioned into
// eight 8-member groups, each churning create / barrier / destroy cycles —
// more than 1000 full cycles per run — while a fault plan kills two member
// NICs mid-soak. Invariant checking (sim::check, on by default) turns any
// protocol violation into a test failure; termination of sim().run() is the
// no-hang assertion; the slot tables must show full recycling at the end.
//
// The CI churn job sweeps NICBAR_SOAK_SEED to vary crash times and member
// start skew; unset, the run is bit-reproducible.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "coll/group.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using coll::BarrierStatus;
using coll::GroupConfig;
using coll::GroupMember;
using coll::GroupState;

constexpr std::size_t kNodes = 64;
constexpr std::size_t kGroups = 8;
constexpr std::size_t kGroupSize = 8;
constexpr int kCyclesPerGroup = 175;  // 6 untouched groups alone exceed 1000

std::uint64_t soak_seed() {
  const char* env = std::getenv("NICBAR_SOAK_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0u;
}

/// Deterministic per-(group, member) jitter in [0, 97) microseconds.
sim::Duration skew(std::uint64_t seed, std::size_t g, std::size_t m) {
  std::uint64_t x = seed * 6364136223846793005ull + g * 1442695040888963407ull + m + 1;
  x ^= x >> 33;
  return sim::microseconds(static_cast<double>(x % 97));
}

struct GroupRun {
  std::vector<gm::Endpoint> endpoints;
  std::vector<std::unique_ptr<gm::Port>> ports;
  /// Per cycle: how many members completed the full create/barrier/destroy
  /// cycle with success statuses.
  std::vector<int> cycle_ok = std::vector<int>(kCyclesPerGroup, 0);
};

sim::Task churn_member(sim::Simulator& sim, GroupRun& gr, std::size_t g, std::size_t m,
                       std::uint64_t seed) {
  co_await sim.delay(skew(seed, g, m));
  for (int c = 0; c < kCyclesPerGroup; ++c) {
    // Pace the churn so the soak spans ~60ms of simulated time and the
    // scheduled crashes (20ms, 45ms) land mid-lifecycle, not after the fact.
    co_await sim.delay(350_us);
    GroupConfig cfg;
    // Fabric-unique and fresh every cycle, so a stale binding from a buggy
    // destroy could never be mistaken for the new incarnation.
    cfg.id = (static_cast<std::uint64_t>(g) << 24) | static_cast<std::uint64_t>(c + 1);
    cfg.deadline = 2_ms;
    cfg.ctrl_deadline = 2_ms;
    GroupMember member(*gr.ports[m], gr.endpoints, cfg);
    const BarrierStatus created = co_await member.run_create();
    bool ok = is_success(created);
    if (ok) {
      const BarrierStatus b = co_await member.run_barrier();
      ok = is_success(b);
    }
    const BarrierStatus destroyed = co_await member.run_destroy();
    EXPECT_EQ(member.state(), GroupState::kFreed);
    if (ok && destroyed == BarrierStatus::kOk) ++gr.cycle_ok[static_cast<std::size_t>(c)];
    // A failure here means a member NIC died: the group is permanently
    // broken (the node never comes back), so stop churning it. Continuing
    // would only accumulate deadline waits.
    if (!ok) break;
  }
}

TEST(ChurnSoakTest, ThousandCycleChurnWithMemberCrashes) {
  host::ClusterParams cp;
  cp.nodes = kNodes;
  const std::uint64_t seed = soak_seed();
  // Two member NICs die mid-soak, in groups 6 and 7 (nodes 48..63); the
  // crash instants move with the seed so different sweeps cut the lifecycle
  // at different points (create, barrier, destroy, idle).
  sim::fault::NicCrash crash_a;
  crash_a.node = 50;
  crash_a.at = sim::SimTime{0} + sim::microseconds(20000.0 + static_cast<double>(seed % 7) * 731.0);
  sim::fault::NicCrash crash_b;
  crash_b.node = 61;
  crash_b.at = sim::SimTime{0} + sim::microseconds(45000.0 + static_cast<double>(seed % 11) * 509.0);
  cp.faults.nic_crashes.push_back(crash_a);
  cp.faults.nic_crashes.push_back(crash_b);

  host::Cluster cluster(cp);
  std::vector<GroupRun> runs(kGroups);
  for (std::size_t g = 0; g < kGroups; ++g) {
    for (std::size_t m = 0; m < kGroupSize; ++m) {
      const net::NodeId node = static_cast<net::NodeId>(g * kGroupSize + m);
      runs[g].endpoints.push_back(gm::Endpoint{node, 2});
      runs[g].ports.push_back(cluster.open_port(node, 2));
    }
  }
  for (std::size_t g = 0; g < kGroups; ++g) {
    for (std::size_t m = 0; m < kGroupSize; ++m) {
      cluster.sim().spawn(churn_member(cluster.sim(), runs[g], g, m, seed));
    }
  }
  cluster.sim().run();  // termination = nothing hung

  // >= 1000 fully-successful cycles across the population.
  std::uint64_t full_cycles = 0;
  for (std::size_t g = 0; g < kGroups; ++g) {
    for (const int n : runs[g].cycle_ok) {
      full_cycles += (n == static_cast<int>(kGroupSize)) ? 1u : 0u;
    }
  }
  EXPECT_GE(full_cycles, 1000u);

  // The six untouched groups must churn to the very end.
  for (std::size_t g = 0; g < 6; ++g) {
    EXPECT_EQ(runs[g].cycle_ok.back(), static_cast<int>(kGroupSize)) << "group " << g;
  }

  // Slot hygiene on every surviving NIC: everything allocated was freed,
  // slots were recycled (high-water far below total groups created), and
  // the fence never fired on the disjoint, lossless-fabric groups 0..5.
  for (net::NodeId n = 0; n < kNodes; ++n) {
    if (n == crash_a.node || n == crash_b.node) continue;
    const nic::SlotStats& s = cluster.nic(n).slots().stats();
    EXPECT_EQ(cluster.nic(n).slots().in_use(), 0) << "nic " << n;
    EXPECT_EQ(s.allocations, s.frees) << "nic " << n;
    EXPECT_LE(s.high_water, 1u) << "nic " << n;
    EXPECT_LT(s.high_water, s.allocations) << "slots must be reused, nic " << n;
  }
}

}  // namespace
}  // namespace nicbar
