// System soak: the full stack under adversity. Eight ranks run a mixed
// workload — ring point-to-point traffic, NIC barriers, NIC allreduces —
// over a fabric dropping packets on every link, with the shared-stream
// reliability protecting collective messages. Everything must complete with
// correct values, and the invariants (§3.1 one-bit-per-endpoint, stream
// ordering) must survive the chaos.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "host/cluster.hpp"
#include "mpi/communicator.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;

/// The CI soak job sweeps NICBAR_SOAK_SEED to explore different loss
/// timelines; unset (the default) leaves every seed exactly as written, so
/// local runs stay bit-identical to the recorded ones.
std::uint64_t soak_seed_offset() {
  const char* env = std::getenv("NICBAR_SOAK_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) * 1000u : 0u;
}

struct SoakResult {
  int finished_ranks = 0;
  std::vector<std::int64_t> final_values;
  std::uint64_t retransmissions = 0;
  std::uint64_t bit_collisions = 0;
  std::uint64_t dropped = 0;
};

SoakResult run_soak(double loss, int iterations, std::uint64_t seed) {
  constexpr std::size_t kRanks = 8;
  host::ClusterParams cp;
  cp.nodes = kRanks;
  cp.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
  cp.nic.retransmit_timeout = 300_us;
  host::Cluster cluster(cp);
  if (loss > 0) {
    std::uint64_t s = seed + soak_seed_offset();
    cluster.network().for_each_link([&](net::Link& l) { l.set_drop_probability(loss, s++); });
  }

  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < kRanks; ++i) group.push_back(gm::Endpoint{i, 2});
  mpi::CommConfig cfg;
  cfg.collective_location = coll::Location::kNic;
  cfg.per_call_overhead = 2_us;

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<mpi::Communicator>> comms;
  for (net::NodeId i = 0; i < kRanks; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    comms.push_back(std::make_unique<mpi::Communicator>(*ports.back(), group, cfg));
  }

  SoakResult res;
  res.final_values.assign(kRanks, -1);
  for (std::size_t i = 0; i < kRanks; ++i) {
    cluster.sim().spawn([](mpi::Communicator& c, int iters, int* done,
                           std::int64_t* final_value) -> sim::Task {
      std::int64_t acc = 0;
      for (int it = 0; it < iters; ++it) {
        // Ring shift with a payload large enough to fragment sometimes.
        const int right = (c.rank() + 1) % c.size();
        const int left = (c.rank() + c.size() - 1) % c.size();
        co_await c.send(right, (it % 3 == 0) ? 6000 : 64,
                        static_cast<std::uint64_t>(1000 * c.rank() + it));
        const mpi::Message m = co_await c.recv(left);
        // The left neighbour's tag for this iteration, exactly once, in order.
        if (m.tag != static_cast<std::uint64_t>(1000 * left + it)) {
          throw std::logic_error("ring message out of order");
        }
        co_await c.barrier();
        acc = co_await c.allreduce(static_cast<std::int64_t>(c.rank()) + it,
                                   nic::ReduceOp::kSum);
      }
      *final_value = acc;
      ++*done;
    }(*comms[i], iterations, &res.finished_ranks, &res.final_values[i]));
  }
  cluster.sim().run(sim::SimTime{0} + sim::seconds(5.0));

  for (net::NodeId i = 0; i < kRanks; ++i) {
    res.retransmissions += cluster.nic(i).stats().retransmissions;
    res.bit_collisions += cluster.nic(i).stats().bit_collisions;
  }
  cluster.network().for_each_link([&](net::Link& l) { res.dropped += l.packets_dropped(); });
  return res;
}

std::int64_t expected_final(int iterations) {
  // sum over ranks of (rank + last_iteration)
  const int last = iterations - 1;
  std::int64_t v = 0;
  for (int r = 0; r < 8; ++r) v += r + last;
  return v;
}

TEST(SoakTest, CleanFabricMixedWorkload) {
  const SoakResult r = run_soak(0.0, 30, 1);
  EXPECT_EQ(r.finished_ranks, 8);
  for (std::int64_t v : r.final_values) EXPECT_EQ(v, expected_final(30));
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.bit_collisions, 0u);
}

TEST(SoakTest, OnePercentLossEverywhere) {
  const SoakResult r = run_soak(0.01, 20, 7);
  EXPECT_EQ(r.finished_ranks, 8);
  for (std::int64_t v : r.final_values) EXPECT_EQ(v, expected_final(20));
  EXPECT_GT(r.dropped, 0u);
  EXPECT_GT(r.retransmissions, 0u);
}

TEST(SoakTest, FivePercentLossEverywhere) {
  const SoakResult r = run_soak(0.05, 10, 13);
  EXPECT_EQ(r.finished_ranks, 8);
  for (std::int64_t v : r.final_values) EXPECT_EQ(v, expected_final(10));
}

TEST(SoakTest, DeterministicUnderLoss) {
  const SoakResult a = run_soak(0.02, 10, 99);
  const SoakResult b = run_soak(0.02, 10, 99);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.final_values, b.final_values);
}

}  // namespace
}  // namespace nicbar
