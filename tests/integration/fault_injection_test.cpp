// The full stack under the PR 2 fault plans: link outages that heal, NIC
// crashes that restart, corruption caught by CRC, bursty loss — the soak
// workload must still finish with correct allreduce values. And the failure
// semantics: a permanently dead peer turns every surviving member's
// BarrierMember::run() into a clean error within the configured deadline,
// never a hung coroutine.
//
// The CI soak job sweeps NICBAR_SOAK_SEED; any seed must pass.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "coll/runner.hpp"
#include "host/cluster.hpp"
#include "mpi/communicator.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;

std::uint64_t soak_seed() {
  const char* env = std::getenv("NICBAR_SOAK_SEED");
  return env != nullptr ? static_cast<std::uint64_t>(std::atoll(env)) : 1u;
}

struct SoakResult {
  int finished_ranks = 0;
  std::vector<std::int64_t> final_values;
  std::vector<sim::SimTime> finish_times;
  std::uint64_t retransmissions = 0;
  std::uint64_t retransmit_timeouts = 0;
  std::uint64_t crc_drops = 0;
  std::uint64_t dropped = 0;
  std::uint64_t nic_crashes = 0;
  std::uint64_t nic_restarts = 0;
};

/// The soak workload (ring traffic + NIC barrier + NIC allreduce per
/// iteration) under an arbitrary fault plan.
SoakResult run_soak(sim::fault::FaultPlan faults, int iterations) {
  constexpr std::size_t kRanks = 8;
  host::ClusterParams cp;
  cp.nodes = kRanks;
  cp.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
  cp.faults = std::move(faults);
  host::Cluster cluster(cp);

  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < kRanks; ++i) group.push_back(gm::Endpoint{i, 2});
  mpi::CommConfig cfg;
  cfg.collective_location = coll::Location::kNic;
  cfg.per_call_overhead = 2_us;

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<mpi::Communicator>> comms;
  for (net::NodeId i = 0; i < kRanks; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    comms.push_back(std::make_unique<mpi::Communicator>(*ports.back(), group, cfg));
  }

  SoakResult res;
  res.final_values.assign(kRanks, -1);
  res.finish_times.assign(kRanks, sim::SimTime{0});
  for (std::size_t i = 0; i < kRanks; ++i) {
    cluster.sim().spawn([](sim::Simulator& s, mpi::Communicator& c, int iters, int* done,
                           std::int64_t* final_value, sim::SimTime* at) -> sim::Task {
      std::int64_t acc = 0;
      for (int it = 0; it < iters; ++it) {
        const int right = (c.rank() + 1) % c.size();
        const int left = (c.rank() + c.size() - 1) % c.size();
        co_await c.send(right, (it % 3 == 0) ? 6000 : 64,
                        static_cast<std::uint64_t>(1000 * c.rank() + it));
        const mpi::Message m = co_await c.recv(left);
        if (m.tag != static_cast<std::uint64_t>(1000 * left + it)) {
          throw std::logic_error("ring message out of order");
        }
        co_await c.barrier();
        acc = co_await c.allreduce(static_cast<std::int64_t>(c.rank()) + it,
                                   nic::ReduceOp::kSum);
      }
      *final_value = acc;
      *at = s.now();
      ++*done;
    }(cluster.sim(), *comms[i], iterations, &res.finished_ranks, &res.final_values[i],
      &res.finish_times[i]));
  }
  cluster.sim().run(sim::SimTime{0} + sim::seconds(5.0));

  for (net::NodeId i = 0; i < kRanks; ++i) {
    const nic::NicStats& s = cluster.nic(i).stats();
    res.retransmissions += s.retransmissions;
    res.retransmit_timeouts += s.retransmit_timeouts;
    res.crc_drops += s.crc_drops;
    res.nic_crashes += s.nic_crashes;
    res.nic_restarts += s.nic_restarts;
  }
  cluster.network().for_each_link([&](net::Link& l) { res.dropped += l.packets_dropped(); });
  return res;
}

std::int64_t expected_final(int iterations) {
  const int last = iterations - 1;
  std::int64_t v = 0;
  for (int r = 0; r < 8; ++r) v += r + last;
  return v;
}

TEST(FaultInjectionTest, LinkDownWindowHealsAndWorkloadCompletes) {
  // Every link is dead for 400 us mid-run; go-back-N replays the gap once
  // the fabric heals and every rank must still compute the right sums.
  sim::fault::FaultPlan plan;
  plan.seed = soak_seed();
  plan.link_down.push_back({"", sim::SimTime{0} + sim::microseconds(300.0),
                            sim::SimTime{0} + sim::microseconds(700.0)});
  const SoakResult r = run_soak(plan, 15);
  EXPECT_EQ(r.finished_ranks, 8);
  for (std::int64_t v : r.final_values) EXPECT_EQ(v, expected_final(15));
  EXPECT_GT(r.dropped, 0u);
  EXPECT_GT(r.retransmit_timeouts, 0u);
}

TEST(FaultInjectionTest, NicCrashRestartReplaysAndWorkloadCompletes) {
  // Node 3's NIC halts for half a millisecond. Connection state survives in
  // host memory; the restart retransmits both streams and the workload ends
  // with correct values on every rank — including the crashed one.
  sim::fault::FaultPlan plan;
  plan.seed = soak_seed();
  plan.nic_crashes.push_back({3, sim::SimTime{0} + sim::microseconds(400.0),
                              sim::SimTime{0} + sim::microseconds(900.0)});
  const SoakResult r = run_soak(plan, 15);
  EXPECT_EQ(r.finished_ranks, 8);
  for (std::int64_t v : r.final_values) EXPECT_EQ(v, expected_final(15));
  EXPECT_EQ(r.nic_crashes, 1u);
  EXPECT_EQ(r.nic_restarts, 1u);
}

TEST(FaultInjectionTest, CorruptionIsCaughtByCrcAndRecovered) {
  sim::fault::FaultPlan plan;
  plan.seed = soak_seed();
  plan.corruption.push_back({"", 0.02});
  const SoakResult r = run_soak(plan, 12);
  EXPECT_EQ(r.finished_ranks, 8);
  for (std::int64_t v : r.final_values) EXPECT_EQ(v, expected_final(12));
  EXPECT_GT(r.crc_drops, 0u);
}

TEST(FaultInjectionTest, BurstLossRecovered) {
  sim::fault::FaultPlan plan;
  plan.seed = soak_seed();
  plan.bursts.push_back({"", 0.002, 0.3, 0.0, 1.0});
  const SoakResult r = run_soak(plan, 12);
  EXPECT_EQ(r.finished_ranks, 8);
  for (std::int64_t v : r.final_values) EXPECT_EQ(v, expected_final(12));
  EXPECT_GT(r.dropped, 0u);
}

TEST(FaultInjectionTest, SwitchPortDownWindowRecovered) {
  // Output port 5 of the single switch (feeding terminal 5) eats everything
  // for 300 us.
  sim::fault::FaultPlan plan;
  plan.seed = soak_seed();
  plan.switch_ports_down.push_back({0, 5, sim::SimTime{0} + sim::microseconds(200.0),
                                    sim::SimTime{0} + sim::microseconds(500.0)});
  const SoakResult r = run_soak(plan, 10);
  EXPECT_EQ(r.finished_ranks, 8);
  for (std::int64_t v : r.final_values) EXPECT_EQ(v, expected_final(10));
}

TEST(FaultInjectionTest, DeterministicUnderComposedFaults) {
  // Same seed, same plan: bit-identical completion times and recovery work.
  sim::fault::FaultPlan plan;
  plan.seed = soak_seed();
  plan.loss.push_back({"", 0.02});
  plan.corruption.push_back({"", 0.01});
  plan.nic_crashes.push_back({5, sim::SimTime{0} + sim::microseconds(500.0),
                              sim::SimTime{0} + sim::microseconds(800.0)});
  const SoakResult a = run_soak(plan, 10);
  const SoakResult b = run_soak(plan, 10);
  EXPECT_EQ(a.finished_ranks, 8);
  EXPECT_EQ(a.finish_times, b.finish_times);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.retransmit_timeouts, b.retransmit_timeouts);
  EXPECT_EQ(a.crc_drops, b.crc_drops);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.final_values, b.final_values);
}

TEST(FaultInjectionTest, EmptyAndBenignPlansMatchFaultFreeTiming) {
  // Arming nothing — or arming a plan whose probabilities are all zero —
  // must leave the simulated timeline bit-identical to the fault-free run:
  // the hooks cost nothing unless a fault actually fires.
  coll::ExperimentParams p;
  p.nodes = 8;
  p.reps = 50;
  const coll::ExperimentResult baseline = coll::run_barrier_experiment(p);

  p.cluster.faults.loss.push_back({"", 0.0});  // armed, but can never fire
  const coll::ExperimentResult benign = coll::run_barrier_experiment(p);

  EXPECT_EQ(baseline.total_us, benign.total_us);
  EXPECT_EQ(baseline.barrier_packets_sent, benign.barrier_packets_sent);
  EXPECT_EQ(benign.retransmissions, 0u);
}

TEST(FaultInjectionTest, DeadPeerFailsEveryMemberWithinDeadline) {
  // Node 7 dies for good shortly after the run starts. Members exchanging
  // with it directly exhaust max_retransmissions and learn kPeerDead; the
  // rest (and node 7's own member, whose NIC is the dead one) hit the
  // deadline. Nobody hangs.
  constexpr std::size_t kNodes = 8;
  const sim::Duration deadline = sim::milliseconds(30.0);
  host::ClusterParams cp;
  cp.nodes = kNodes;
  cp.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
  cp.nic.max_retransmissions = 4;  // give up quickly enough to beat the deadline
  cp.faults.nic_crashes.push_back({7, sim::SimTime{0} + sim::microseconds(150.0)});
  host::Cluster cluster(cp);

  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < kNodes; ++i) group.push_back(gm::Endpoint{i, 2});
  coll::BarrierSpec spec;
  spec.location = coll::Location::kNic;
  spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  spec.deadline = deadline;

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::BarrierMember>> members;
  for (net::NodeId i = 0; i < kNodes; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    members.push_back(std::make_unique<coll::BarrierMember>(*ports.back(), group, spec));
  }

  struct Outcome {
    bool returned = false;
    coll::BarrierStatus status = coll::BarrierStatus::kOk;
    sim::Duration overrun{0};  // time from the failing run()'s start to its return
  };
  std::vector<Outcome> outcomes(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    cluster.sim().spawn([](sim::Simulator& s, coll::BarrierMember& m, Outcome* out) -> sim::Task {
      for (int k = 0; k < 1000; ++k) {
        const sim::SimTime start = s.now();
        const coll::BarrierStatus st = co_await m.run();
        if (st != coll::BarrierStatus::kOk) {
          out->returned = true;
          out->status = st;
          out->overrun = s.now() - start;
          co_return;
        }
      }
    }(cluster.sim(), *members[i], &outcomes[i]));
  }
  cluster.sim().run(sim::SimTime{0} + sim::seconds(2.0));

  bool saw_peer_dead = false;
  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_TRUE(outcomes[i].returned) << "member " << i << " hung (or never failed)";
    EXPECT_NE(outcomes[i].status, coll::BarrierStatus::kOk) << "member " << i;
    // The deadline is the worst case; kPeerDead may arrive sooner.
    EXPECT_LE(outcomes[i].overrun.us(), deadline.us() + 1.0) << "member " << i;
    if (outcomes[i].status == coll::BarrierStatus::kPeerDead) saw_peer_dead = true;
  }
  // PE partners of node 7 (nodes 6, 5, 3) exchange with it directly and must
  // discover the death via retransmission give-up, not just the deadline.
  EXPECT_TRUE(saw_peer_dead);

  std::uint64_t connections_failed = 0;
  for (net::NodeId i = 0; i < kNodes; ++i) {
    connections_failed += cluster.nic(i).stats().connections_failed;
  }
  EXPECT_GT(connections_failed, 0u);
}

TEST(FaultInjectionTest, CommunicatorBarrierReportsFailure) {
  // The MPI layer surfaces the same semantics: barrier() returns a non-Ok
  // status within the configured deadline and the communicator turns failed.
  constexpr std::size_t kNodes = 4;
  host::ClusterParams cp;
  cp.nodes = kNodes;
  cp.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
  cp.nic.max_retransmissions = 4;
  cp.faults.nic_crashes.push_back({3, sim::SimTime{0} + sim::microseconds(100.0)});
  host::Cluster cluster(cp);

  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < kNodes; ++i) group.push_back(gm::Endpoint{i, 2});
  mpi::CommConfig cfg;
  cfg.barrier_deadline = sim::milliseconds(30.0);

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<mpi::Communicator>> comms;
  for (net::NodeId i = 0; i < kNodes; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    comms.push_back(std::make_unique<mpi::Communicator>(*ports.back(), group, cfg));
  }
  std::vector<int> failed(kNodes, 0);
  for (std::size_t i = 0; i < kNodes; ++i) {
    cluster.sim().spawn([](mpi::Communicator& c, int* out) -> sim::Task {
      for (int k = 0; k < 1000; ++k) {
        const coll::BarrierStatus st = co_await c.barrier();
        if (st != coll::BarrierStatus::kOk) {
          *out = 1;
          co_return;
        }
      }
    }(*comms[i], &failed[i]));
  }
  cluster.sim().run(sim::SimTime{0} + sim::seconds(2.0));

  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(failed[i], 1) << "rank " << i << " never saw the failure";
    EXPECT_TRUE(comms[i]->failed()) << "rank " << i;
  }
}

}  // namespace
}  // namespace nicbar
