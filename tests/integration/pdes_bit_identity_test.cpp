// The PDES acceptance gate: a partitioned run is not "approximately" the
// serial run — it IS the serial run, to the picosecond, for every barrier
// family, node count, partition count, and worker count. Each case runs the
// serial engine once and the partitioned engine at several (partitions,
// workers) points, then EXPECT_EQs:
//
//   - the total loop time and per-member completion times (integer ps),
//   - every snapshot_metrics counter and gauge (NIC, engine, PCI, link,
//     switch, injection totals),
//   - the canonicalized causal record: completion tuples, per-barrier
//     critical-path totals, and the aggregated per-segment attribution.
//
// A lossy + fault-plan case pins RNG substream partition-independence: drop
// and corruption draws are per-link streams keyed by arming order, so the
// partition layout must not perturb a single draw.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "coll/runner.hpp"
#include "host/cluster.hpp"
#include "sim/causal.hpp"
#include "sim/fault.hpp"
#include "sim/telemetry.hpp"
#include "sim/time.hpp"

namespace nicbar {
namespace {

struct EngineConfig {
  std::size_t partitions = 1;
  unsigned workers = 1;
};

// Everything observable about one experiment run, ready for operator==.
struct Observed {
  sim::Duration total{0};
  std::vector<sim::SimTime> member_ends;
  std::uint64_t barriers_completed = 0;
  std::uint64_t barrier_packets = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t drops = 0;
  std::uint64_t failures = 0;
  std::uint64_t stalled = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  // Canonical causal record (empty when the case skips tracing).
  std::vector<std::tuple<std::uint32_t, std::uint16_t, std::uint32_t, std::int64_t>> completed;
  std::uint64_t profile_barriers = 0;
  std::int64_t profile_total_ps = 0;
  std::vector<std::int64_t> profile_self;
  std::vector<std::int64_t> profile_queue;
};

struct CaseSpec {
  coll::ExperimentParams params;
  bool causal = false;
};

Observed run_case(const CaseSpec& spec, const EngineConfig& engine) {
  coll::ExperimentParams p = spec.params;
  p.cluster.pdes_partitions = engine.partitions;
  p.cluster.pdes_workers = engine.workers;

  sim::telemetry::Telemetry tel;
  if (spec.causal) tel.enable_causal();
  p.cluster.telemetry = &tel;

  const coll::ExperimentResult r = coll::run_barrier_experiment(p);

  Observed o;
  o.total = r.total;
  o.member_ends = r.member_end_times;
  o.barriers_completed = r.barriers_completed;
  o.barrier_packets = r.barrier_packets_sent;
  o.retransmissions = r.retransmissions;
  o.drops = r.link_packets_dropped;
  o.failures = r.barrier_failures;
  o.stalled = r.stalled_members;
  o.counters = tel.metrics().counters();
  o.gauges = tel.metrics().gauges();

  if (spec.causal) {
    sim::causal::CausalTracer* tracer = tel.causal();
    // Serial runs record in a single arena; canonicalize anyway so span ids
    // are content-derived on both sides (idempotent on a canonical tracer).
    tracer->canonicalize();
    for (const sim::causal::CompletedBarrier& b : tracer->completed()) {
      o.completed.emplace_back(b.node, b.port, b.epoch, b.total.ps());
    }
    const sim::causal::PathProfile prof = tracer->profile();
    o.profile_barriers = prof.barriers;
    o.profile_total_ps = prof.total.ps();
    for (std::size_t s = 0; s < sim::causal::kSegmentCount; ++s) {
      o.profile_self.push_back(prof.self[s].ps());
      o.profile_queue.push_back(prof.queue[s].ps());
    }
  }
  return o;
}

void expect_identical(const Observed& serial, const Observed& par, const std::string& what) {
  EXPECT_EQ(serial.total.ps(), par.total.ps()) << what;
  ASSERT_EQ(serial.member_ends.size(), par.member_ends.size()) << what;
  for (std::size_t i = 0; i < serial.member_ends.size(); ++i) {
    EXPECT_EQ(serial.member_ends[i].ps(), par.member_ends[i].ps()) << what << " member " << i;
  }
  EXPECT_EQ(serial.barriers_completed, par.barriers_completed) << what;
  EXPECT_EQ(serial.barrier_packets, par.barrier_packets) << what;
  EXPECT_EQ(serial.retransmissions, par.retransmissions) << what;
  EXPECT_EQ(serial.drops, par.drops) << what;
  EXPECT_EQ(serial.failures, par.failures) << what;
  EXPECT_EQ(serial.stalled, par.stalled) << what;
  EXPECT_EQ(serial.counters, par.counters) << what;
  EXPECT_EQ(serial.gauges, par.gauges) << what;
  EXPECT_EQ(serial.completed, par.completed) << what;
  EXPECT_EQ(serial.profile_barriers, par.profile_barriers) << what;
  EXPECT_EQ(serial.profile_total_ps, par.profile_total_ps) << what;
  EXPECT_EQ(serial.profile_self, par.profile_self) << what;
  EXPECT_EQ(serial.profile_queue, par.profile_queue) << what;
}

// The (partitions, workers) sweep every case is checked at. Varying both
// proves the timeline depends on neither; workers > partitions exercises
// the pool's clamp-free sharding.
const EngineConfig kEngines[] = {{2, 2}, {4, 4}, {8, 8}, {4, 2}, {2, 8}};

void check_case(const CaseSpec& spec, const std::string& name) {
  const Observed serial = run_case(spec, EngineConfig{1, 1});
  // The host-located family completes in the host library, not the NIC
  // engine, so the NIC counters can legitimately read 0 — prove progress via
  // elapsed time and clean termination (stalled == 0 means every member ran
  // its full rep loop to completion) instead.
  ASSERT_GT(serial.total.ps(), 0) << name << ": serial baseline took zero time";
  ASSERT_EQ(serial.failures, 0u) << name;
  ASSERT_EQ(serial.stalled, 0u) << name;
  for (const EngineConfig& e : kEngines) {
    const Observed par = run_case(spec, e);
    expect_identical(serial, par,
                     name + " [P=" + std::to_string(e.partitions) +
                         " W=" + std::to_string(e.workers) + "]");
  }
}

CaseSpec base_case(std::size_t nodes, int reps) {
  CaseSpec c;
  c.params.nodes = nodes;
  c.params.reps = reps;
  c.params.cluster.nodes = nodes;
  return c;
}

TEST(PdesBitIdentity, FlatPairwiseExchange) {
  for (const std::size_t n : {16u, 64u, 256u}) {
    CaseSpec c = base_case(n, n <= 64 ? 3 : 2);
    c.params.spec.location = coll::Location::kNic;
    c.params.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
    c.causal = n <= 64;
    check_case(c, "flat-pe-n" + std::to_string(n));
  }
}

TEST(PdesBitIdentity, FlatGatherBroadcast) {
  for (const std::size_t n : {16u, 64u, 256u}) {
    CaseSpec c = base_case(n, n <= 64 ? 3 : 2);
    c.params.spec.location = coll::Location::kNic;
    c.params.spec.algorithm = nic::BarrierAlgorithm::kGatherBroadcast;
    c.params.spec.gb_dimension = 4;
    c.causal = n <= 64;
    check_case(c, "flat-gb-n" + std::to_string(n));
  }
}

TEST(PdesBitIdentity, HostDissemination) {
  // The host-based family: PE rounds driven from host processes over GM
  // send/receive — the heaviest host<->NIC interleaving of the four.
  for (const std::size_t n : {16u, 64u, 256u}) {
    CaseSpec c = base_case(n, n <= 64 ? 3 : 2);
    c.params.spec.location = coll::Location::kHost;
    c.params.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
    c.causal = n <= 64;
    check_case(c, "host-dissem-n" + std::to_string(n));
  }
}

TEST(PdesBitIdentity, HierarchicalFatTree) {
  // Leaf-aligned partitioning: nodes share a lane with their leaf switch,
  // representatives cross partitions through the spine.
  for (const std::size_t n : {16u, 64u, 256u}) {
    CaseSpec c = base_case(n, n <= 64 ? 3 : 2);
    c.params.cluster.topology = host::Topology::kFatTree;
    c.params.cluster.fabric_radix = 16;
    c.params.spec.hierarchical = true;
    c.causal = n <= 64;
    check_case(c, "hier-fat-tree-n" + std::to_string(n));
  }
}

TEST(PdesBitIdentity, LossyWithFaultPlan) {
  // Per-link RNG substreams (drop, burst, corruption) are derived from the
  // plan seed in arming order and consumed in transmit order — both
  // partition-independent, so retransmission timelines must match exactly.
  CaseSpec c = base_case(16, 4);
  c.params.spec.location = coll::Location::kNic;
  c.params.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  c.causal = true;

  sim::fault::UniformLoss loss;
  loss.link = "*";
  loss.prob = 0.02;
  c.params.cluster.faults.loss.push_back(loss);
  sim::fault::Corruption corr;
  corr.link = "*";
  corr.prob = 0.01;
  c.params.cluster.faults.corruption.push_back(corr);
  c.params.cluster.faults.seed = 0xfeedULL;

  const Observed serial = run_case(c, EngineConfig{1, 1});
  ASSERT_GT(serial.drops + serial.retransmissions, 0u)
      << "lossy case drew no faults - the RNG-independence claim is untested";
  for (const EngineConfig& e : kEngines) {
    expect_identical(serial, run_case(c, e),
                     std::string("lossy [P=") + std::to_string(e.partitions) +
                         " W=" + std::to_string(e.workers) + "]");
  }
}

TEST(PdesBitIdentity, StartSkewAndPermutedPlacement) {
  // Skewed arrivals plus a non-identity node placement: partition
  // boundaries cut through the member order, not just node blocks.
  CaseSpec c = base_case(16, 3);
  c.params.spec.location = coll::Location::kNic;
  c.params.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  c.params.max_start_skew = sim::Duration{50'000'000};  // 50 us
  c.params.seed = 7;
  for (std::size_t i = 0; i < 16; ++i) {
    c.params.node_order.push_back(static_cast<net::NodeId>((i * 5) % 16));
  }
  c.causal = true;
  check_case(c, "skew-permuted");
}

}  // namespace
}  // namespace nicbar
