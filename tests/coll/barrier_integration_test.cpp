// Integration tests for all four barrier variants (host/NIC x PE/GB):
// correctness of the synchronization semantics, repetition, concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "coll/runner.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using coll::BarrierMember;
using coll::BarrierSpec;
using coll::Location;
using nic::BarrierAlgorithm;

struct Fixture {
  explicit Fixture(std::size_t n, host::ClusterParams cp = {}) {
    cp.nodes = n;
    cluster = std::make_unique<host::Cluster>(cp);
    for (std::size_t i = 0; i < n; ++i) {
      group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
    }
    for (std::size_t i = 0; i < n; ++i) {
      ports.push_back(cluster->open_port(static_cast<net::NodeId>(i), 2));
    }
  }
  std::unique_ptr<host::Cluster> cluster;
  std::vector<gm::Endpoint> group;
  std::vector<std::unique_ptr<gm::Port>> ports;
};

// Each member records completion times; a correct barrier requires every
// member's exit time >= every member's entry time.
sim::Task barrier_once(sim::Simulator& sim, BarrierMember& m, sim::Duration entry_delay,
                       sim::SimTime* entered, sim::SimTime* exited) {
  co_await sim.delay(entry_delay);
  *entered = sim.now();
  co_await m.run();
  *exited = sim.now();
}

void check_barrier_semantics(std::size_t n, BarrierSpec spec,
                             std::vector<sim::Duration> delays,
                             host::ClusterParams cp = {}) {
  Fixture f(n, cp);
  std::vector<std::unique_ptr<BarrierMember>> members;
  std::vector<sim::SimTime> entered(n), exited(n);
  for (std::size_t i = 0; i < n; ++i) {
    members.push_back(std::make_unique<BarrierMember>(*f.ports[i], f.group, spec));
    f.cluster->sim().spawn(barrier_once(f.cluster->sim(), *members[i], delays[i],
                                        &entered[i], &exited[i]));
  }
  f.cluster->sim().run();
  const sim::SimTime last_entry = *std::max_element(entered.begin(), entered.end());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(exited[i].ps(), last_entry.ps())
        << "member " << i << " exited before member(s) entered";
    EXPECT_GT(exited[i].ps(), 0) << "member " << i << " never completed";
  }
}

std::vector<sim::Duration> no_delays(std::size_t n) { return std::vector<sim::Duration>(n); }

std::vector<sim::Duration> staggered(std::size_t n) {
  std::vector<sim::Duration> d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = sim::microseconds(37.0 * static_cast<double>(i));
  return d;
}

BarrierSpec spec(Location loc, BarrierAlgorithm alg, std::size_t dim = 2) {
  BarrierSpec s;
  s.location = loc;
  s.algorithm = alg;
  s.gb_dimension = dim;
  return s;
}

class BarrierVariants
    : public ::testing::TestWithParam<std::tuple<Location, BarrierAlgorithm, std::size_t>> {};

TEST_P(BarrierVariants, SynchronizesSimultaneousEntry) {
  auto [loc, alg, n] = GetParam();
  check_barrier_semantics(n, spec(loc, alg), no_delays(n));
}

TEST_P(BarrierVariants, SynchronizesStaggeredEntry) {
  auto [loc, alg, n] = GetParam();
  check_barrier_semantics(n, spec(loc, alg), staggered(n));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, BarrierVariants,
    ::testing::Combine(::testing::Values(Location::kHost, Location::kNic),
                       ::testing::Values(BarrierAlgorithm::kPairwiseExchange,
                                         BarrierAlgorithm::kGatherBroadcast),
                       ::testing::Values(std::size_t{2}, std::size_t{4}, std::size_t{8},
                                         std::size_t{16})),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) == Location::kHost ? "Host" : "Nic";
      name += std::get<1>(info.param) == BarrierAlgorithm::kPairwiseExchange ? "PE" : "GB";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

// Non-power-of-two groups (extension: MPICH-style extra folding).
class NonPow2Barrier
    : public ::testing::TestWithParam<std::tuple<Location, std::size_t>> {};

TEST_P(NonPow2Barrier, PairwiseExchangeSynchronizes) {
  auto [loc, n] = GetParam();
  check_barrier_semantics(n, spec(loc, BarrierAlgorithm::kPairwiseExchange), staggered(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, NonPow2Barrier,
                         ::testing::Combine(::testing::Values(Location::kHost, Location::kNic),
                                            ::testing::Values(std::size_t{3}, std::size_t{5},
                                                              std::size_t{6}, std::size_t{7},
                                                              std::size_t{11}, std::size_t{13})),
                         [](const auto& info) {
                           return std::string(std::get<0>(info.param) == Location::kHost
                                                  ? "Host"
                                                  : "Nic") +
                                  std::to_string(std::get<1>(info.param));
                         });

// GB with all dimensions for a fixed size.
class GbDimensions : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GbDimensions, NicGbSynchronizesAtEveryDimension) {
  const std::size_t dim = GetParam();
  check_barrier_semantics(8, spec(Location::kNic, BarrierAlgorithm::kGatherBroadcast, dim),
                          staggered(8));
}

TEST_P(GbDimensions, HostGbSynchronizesAtEveryDimension) {
  const std::size_t dim = GetParam();
  check_barrier_semantics(8, spec(Location::kHost, BarrierAlgorithm::kGatherBroadcast, dim),
                          staggered(8));
}

INSTANTIATE_TEST_SUITE_P(Dims, GbDimensions,
                         ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{3},
                                           std::size_t{4}, std::size_t{5}, std::size_t{6},
                                           std::size_t{7}));

TEST(BarrierRepetitionTest, ManyConsecutiveBarriersNicPe) {
  coll::ExperimentParams p;
  p.nodes = 8;
  p.reps = 50;
  p.spec = spec(Location::kNic, BarrierAlgorithm::kPairwiseExchange);
  const coll::ExperimentResult r = coll::run_barrier_experiment(p);
  EXPECT_EQ(r.barriers_completed, 8u * 50u);
  EXPECT_GT(r.mean_us, 0.0);
}

TEST(BarrierRepetitionTest, ManyConsecutiveBarriersHostGb) {
  coll::ExperimentParams p;
  p.nodes = 8;
  p.reps = 25;
  p.spec = spec(Location::kHost, BarrierAlgorithm::kGatherBroadcast, 3);
  const coll::ExperimentResult r = coll::run_barrier_experiment(p);
  EXPECT_GT(r.mean_us, 0.0);
  EXPECT_EQ(r.retransmissions, 0u);
}

TEST(BarrierRepetitionTest, SkewedStartsStillSynchronize) {
  coll::ExperimentParams p;
  p.nodes = 16;
  p.reps = 20;
  p.spec = spec(Location::kNic, BarrierAlgorithm::kPairwiseExchange);
  p.max_start_skew = 500_us;
  const coll::ExperimentResult r = coll::run_barrier_experiment(p);
  EXPECT_EQ(r.barriers_completed, 16u * 20u);
  // Staggered starts produce unexpected (early) barrier messages (§3.1).
  EXPECT_GT(r.unexpected_recorded, 0u);
  EXPECT_EQ(r.bit_collisions, 0u);  // §3.1 invariant: at most one per endpoint
}

TEST(ConcurrentBarriersTest, DisjointGroupsOnSharedNics) {
  // Two disjoint 4-node barriers share the same 4 NICs via different ports
  // (§3.4: multiple concurrent barriers on one NIC).
  host::ClusterParams cp;
  cp.nodes = 4;
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> g1, g2;
  std::vector<std::unique_ptr<gm::Port>> ports;
  for (net::NodeId i = 0; i < 4; ++i) {
    g1.push_back(gm::Endpoint{i, 2});
    g2.push_back(gm::Endpoint{i, 3});
  }
  std::vector<std::unique_ptr<BarrierMember>> members;
  int done = 0;
  for (net::NodeId i = 0; i < 4; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    members.push_back(std::make_unique<BarrierMember>(
        *ports.back(), g1, spec(Location::kNic, BarrierAlgorithm::kPairwiseExchange)));
    ports.push_back(cluster.open_port(i, 3));
    members.push_back(std::make_unique<BarrierMember>(
        *ports.back(), g2, spec(Location::kNic, BarrierAlgorithm::kGatherBroadcast)));
  }
  for (auto& m : members) {
    cluster.sim().spawn([](BarrierMember& mem, int* counter) -> sim::Task {
      for (int r = 0; r < 10; ++r) co_await mem.run();
      ++*counter;
    }(*m, &done));
  }
  cluster.sim().run();
  EXPECT_EQ(done, 8);
  for (net::NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.nic(i).stats().barriers_completed, 20u);  // 10 per port
  }
}

TEST(BarrierLatencyShapeTest, NicPeBeatsHostPe) {
  for (std::size_t n : {4u, 8u, 16u}) {
    coll::ExperimentParams p;
    p.nodes = n;
    p.reps = 30;
    p.spec = spec(Location::kNic, BarrierAlgorithm::kPairwiseExchange);
    const double nic_us = coll::run_barrier_experiment(p).mean_us;
    p.spec = spec(Location::kHost, BarrierAlgorithm::kPairwiseExchange);
    const double host_us = coll::run_barrier_experiment(p).mean_us;
    EXPECT_LT(nic_us, host_us) << "n=" << n;
  }
}

TEST(BarrierLatencyShapeTest, FasterNicRaisesImprovement) {
  auto improvement = [](const nic::NicConfig& nc) {
    coll::ExperimentParams p;
    p.nodes = 8;
    p.reps = 30;
    p.cluster.nic = nc;
    p.spec = spec(Location::kNic, BarrierAlgorithm::kPairwiseExchange);
    const double nic_us = coll::run_barrier_experiment(p).mean_us;
    p.spec = spec(Location::kHost, BarrierAlgorithm::kPairwiseExchange);
    const double host_us = coll::run_barrier_experiment(p).mean_us;
    return host_us / nic_us;
  };
  EXPECT_GT(improvement(nic::lanai72()), improvement(nic::lanai43()));
}

}  // namespace
}  // namespace nicbar
