// coll::GroupMember — the managed barrier-group lifecycle: two-phase
// create/destroy, NIC-slot admission with host fallback (kOkDegraded),
// re-promotion, stale-packet fencing, slot reuse under churn, and clean
// failure (kDeadline) when a member's NIC dies mid-lifecycle.
#include "coll/group.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

namespace nicbar::coll {
namespace {

using namespace sim::literals;

struct Fixture {
  explicit Fixture(std::size_t n, host::ClusterParams cp = {}, nic::PortId port_id = 2) {
    cp.nodes = n;
    cluster = std::make_unique<host::Cluster>(cp);
    for (std::size_t i = 0; i < n; ++i) {
      group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), port_id});
    }
    for (std::size_t i = 0; i < n; ++i) {
      ports.push_back(cluster->open_port(static_cast<net::NodeId>(i), port_id));
    }
  }

  std::vector<std::unique_ptr<GroupMember>> make_members(GroupConfig cfg) {
    std::vector<std::unique_ptr<GroupMember>> ms;
    for (auto& p : ports) ms.push_back(std::make_unique<GroupMember>(*p, group, cfg));
    return ms;
  }

  std::unique_ptr<host::Cluster> cluster;
  std::vector<gm::Endpoint> group;
  std::vector<std::unique_ptr<gm::Port>> ports;
};

GroupConfig config(std::uint64_t id) {
  GroupConfig c;
  c.id = id;
  c.ctrl_deadline = 5_ms;
  return c;
}

/// One member's full life: create, `barriers` barrier() calls, destroy.
/// Records every status in order (create first, destroy last).
sim::Task member_life(GroupMember& m, int barriers, std::vector<BarrierStatus>* out) {
  out->push_back(co_await m.run_create());
  for (int i = 0; i < barriers; ++i) {
    const BarrierStatus st = co_await m.run_barrier();
    out->push_back(st);
    if (!is_success(st)) break;
  }
  out->push_back(co_await m.run_destroy());
}

TEST(GroupLifecycleTest, CreateBarrierDestroyNicOffloaded) {
  Fixture f(4);
  auto ms = f.make_members(config(7));
  std::vector<std::vector<BarrierStatus>> st(4);
  for (std::size_t i = 0; i < 4; ++i) {
    f.cluster->sim().spawn(member_life(*ms[i], 3, &st[i]));
  }
  f.cluster->sim().run();
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(st[i].size(), 5u) << "member " << i;
    for (const BarrierStatus s : st[i]) EXPECT_EQ(s, BarrierStatus::kOk) << "member " << i;
    EXPECT_EQ(ms[i]->state(), GroupState::kFreed);
    EXPECT_EQ(ms[i]->barriers_run(), 3u);
    EXPECT_EQ(ms[i]->degraded_barriers(), 0u);
  }
  for (net::NodeId n = 0; n < 4; ++n) {
    const nic::SlotStats& s = f.cluster->nic(n).slots().stats();
    EXPECT_EQ(s.allocations, 1u) << "nic " << n;
    EXPECT_EQ(s.frees, 1u) << "nic " << n;
    EXPECT_EQ(f.cluster->nic(n).slots().in_use(), 0) << "nic " << n;
    EXPECT_EQ(f.cluster->nic(n).stats().stale_group_fenced, 0u) << "nic " << n;
  }
}

TEST(GroupLifecycleTest, SlotExhaustionFallsBackDegraded) {
  host::ClusterParams cp;
  cp.nic.barrier_slots = 0;  // no NIC barrier state at all
  Fixture f(4, cp);
  auto ms = f.make_members(config(7));
  std::vector<std::vector<BarrierStatus>> st(4);
  for (std::size_t i = 0; i < 4; ++i) {
    f.cluster->sim().spawn(member_life(*ms[i], 2, &st[i]));
  }
  f.cluster->sim().run();
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(st[i].size(), 4u) << "member " << i;
    EXPECT_EQ(st[i][0], BarrierStatus::kOkDegraded);  // create: admission rejected
    EXPECT_EQ(st[i][1], BarrierStatus::kOkDegraded);  // barriers complete, host-driven
    EXPECT_EQ(st[i][2], BarrierStatus::kOkDegraded);
    EXPECT_EQ(st[i][3], BarrierStatus::kOk);  // destroy
    EXPECT_EQ(ms[i]->state(), GroupState::kFreed);
    EXPECT_EQ(ms[i]->degraded_barriers(), 2u);
  }
  for (net::NodeId n = 0; n < 4; ++n) {
    EXPECT_GT(f.cluster->nic(n).slots().stats().rejections, 0u) << "nic " << n;
    EXPECT_EQ(f.cluster->nic(n).slots().stats().allocations, 0u) << "nic " << n;
  }
}

TEST(GroupLifecycleTest, DegradedGroupRepromotesWhenSlotsFree) {
  // One slot per NIC. Group A takes it; group B (separate GM ports, same
  // nodes) comes up degraded. Destroying A frees the slot, and B's periodic
  // re-promotion handshake switches it back to NIC offload.
  host::ClusterParams cp;
  cp.nodes = 3;
  cp.nic.barrier_slots = 1;
  auto cluster = std::make_unique<host::Cluster>(cp);
  std::vector<gm::Endpoint> ga, gb;
  std::vector<std::unique_ptr<gm::Port>> pa, pb;
  for (net::NodeId i = 0; i < 3; ++i) {
    ga.push_back(gm::Endpoint{i, 2});
    gb.push_back(gm::Endpoint{i, 3});
    pa.push_back(cluster->open_port(i, 2));
    pb.push_back(cluster->open_port(i, 3));
  }
  GroupConfig ca = config(1);
  GroupConfig cb = config(2);
  cb.promote_every = 2;
  std::vector<std::unique_ptr<GroupMember>> ma, mb;
  for (std::size_t i = 0; i < 3; ++i) {
    ma.push_back(std::make_unique<GroupMember>(*pa[i], ga, ca));
    mb.push_back(std::make_unique<GroupMember>(*pb[i], gb, cb));
  }
  std::vector<std::vector<BarrierStatus>> st(3);
  for (std::size_t i = 0; i < 3; ++i) {
    cluster->sim().spawn([](GroupMember& a, GroupMember& b,
                            std::vector<BarrierStatus>* out) -> sim::Task {
      out->push_back(co_await a.run_create());  // A takes the slot
      out->push_back(co_await b.run_create());  // B is rejected -> degraded
      out->push_back(co_await a.run_destroy());  // slot freed everywhere
      // promote_every = 2: barriers 1-2 degraded, the 2nd triggers a
      // re-promotion handshake that now finds slots free on every NIC.
      for (int k = 0; k < 3; ++k) out->push_back(co_await b.run_barrier());
      out->push_back(co_await b.run_destroy());
    }(*ma[i], *mb[i], &st[i]));
  }
  cluster->sim().run();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(st[i].size(), 7u) << "member " << i;
    EXPECT_EQ(st[i][0], BarrierStatus::kOk);          // A create
    EXPECT_EQ(st[i][1], BarrierStatus::kOkDegraded);  // B create, rejected
    EXPECT_EQ(st[i][2], BarrierStatus::kOk);          // A destroy
    EXPECT_EQ(st[i][3], BarrierStatus::kOkDegraded);  // B barrier 1
    EXPECT_EQ(st[i][4], BarrierStatus::kOkDegraded);  // B barrier 2 (+ promote)
    EXPECT_EQ(st[i][5], BarrierStatus::kOk);          // B barrier 3: NIC again
    EXPECT_EQ(st[i][6], BarrierStatus::kOk);          // B destroy
    EXPECT_EQ(mb[i]->promotions(), 1u);
    EXPECT_EQ(mb[i]->state(), GroupState::kFreed);
  }
  for (net::NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster->nic(n).slots().in_use(), 0) << "nic " << n;
  }
}

TEST(GroupLifecycleTest, StalePacketFromUnboundGroupIsFenced) {
  // Node 0 holds a slot binding for group 42; node 1 never allocated one.
  // Node 0's barrier packet reaches node 1's firmware carrying group 42 and
  // must be fenced (counted, dropped) — the cross-incarnation safety net for
  // packets that outlive their group. Node 0's barrier can then only end by
  // deadline.
  Fixture f(2);
  ASSERT_TRUE(f.cluster->nic(0).slot_allocate(42, 2));
  BarrierSpec spec;
  spec.location = Location::kNic;
  spec.group = 42;
  spec.deadline = 300_us;
  BarrierMember m(*f.ports[0], f.group, spec);
  BarrierStatus st = BarrierStatus::kOk;
  f.cluster->sim().spawn([](BarrierMember& bm, BarrierStatus* out) -> sim::Task {
    *out = co_await bm.run();
  }(m, &st));
  f.cluster->sim().run();
  EXPECT_EQ(st, BarrierStatus::kDeadline);
  EXPECT_EQ(f.cluster->nic(1).stats().stale_group_fenced, 1u);
  EXPECT_EQ(f.cluster->nic(0).stats().stale_group_fenced, 0u);
}

TEST(GroupLifecycleTest, ChurnReusesSlots) {
  // 40 sequential create/barrier/destroy cycles through one slot table.
  // Reuse accounting must show recycling: the high-water mark stays at 1
  // (never 40), and generations count the reuses.
  Fixture f(4);
  std::vector<std::vector<BarrierStatus>> st(4);
  constexpr int kCycles = 40;
  for (std::size_t i = 0; i < 4; ++i) {
    f.cluster->sim().spawn([](Fixture& fx, std::size_t me,
                              std::vector<BarrierStatus>* out) -> sim::Task {
      for (int c = 0; c < kCycles; ++c) {
        GroupMember m(*fx.ports[me], fx.group, config(static_cast<std::uint64_t>(c + 1)));
        out->push_back(co_await m.run_create());
        out->push_back(co_await m.run_barrier());
        out->push_back(co_await m.run_destroy());
      }
    }(f, i, &st[i]));
  }
  f.cluster->sim().run();
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(st[i].size(), 3u * kCycles) << "member " << i;
    for (const BarrierStatus s : st[i]) EXPECT_EQ(s, BarrierStatus::kOk) << "member " << i;
  }
  for (net::NodeId n = 0; n < 4; ++n) {
    const nic::SlotStats& s = f.cluster->nic(n).slots().stats();
    EXPECT_EQ(s.allocations, static_cast<std::uint64_t>(kCycles)) << "nic " << n;
    EXPECT_EQ(s.frees, static_cast<std::uint64_t>(kCycles)) << "nic " << n;
    EXPECT_EQ(s.high_water, 1u) << "nic " << n;  // slots recycled, not hoarded
    EXPECT_GE(s.generations, static_cast<std::uint64_t>(kCycles - 1)) << "nic " << n;
    EXPECT_EQ(f.cluster->nic(n).slots().in_use(), 0) << "nic " << n;
    EXPECT_EQ(f.cluster->nic(n).stats().stale_group_fenced, 0u) << "nic " << n;
  }
}

TEST(GroupLifecycleTest, MemberCrashDuringBarriersFailsCleanlyByDeadline) {
  // Node 3's NIC dies at t=300us and never restarts. The fabric is
  // unreliable (no kPeerDead ever fires), so the per-barrier deadline is the
  // only exit: every survivor must abort with kDeadline — never hang — and
  // destroy() must still release local slots.
  host::ClusterParams cp;
  sim::fault::NicCrash crash;
  crash.node = 3;
  crash.at = sim::SimTime{0} + 300_us;
  cp.faults.nic_crashes.push_back(crash);
  Fixture f(4, cp);
  GroupConfig cfg = config(9);
  cfg.deadline = 400_us;
  cfg.ctrl_deadline = 400_us;
  auto ms = f.make_members(cfg);
  std::vector<std::vector<BarrierStatus>> st(4);
  // All four members run — node 3's host process outlives its NIC and keeps
  // issuing calls against dead hardware; assertions cover the survivors.
  for (std::size_t i = 0; i < 4; ++i) {
    f.cluster->sim().spawn([](sim::Simulator& sim, GroupMember& m,
                              std::vector<BarrierStatus>* out) -> sim::Task {
      out->push_back(co_await m.run_create());
      for (int k = 0; k < 50; ++k) {
        co_await sim.delay(40_us);  // compute phase between barriers
        const BarrierStatus s = co_await m.run_barrier();
        out->push_back(s);
        if (!is_success(s)) break;
      }
      out->push_back(co_await m.run_destroy());
    }(f.cluster->sim(), *ms[i], &st[i]));
  }
  f.cluster->sim().run();  // termination IS the no-hang assertion
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_GE(st[i].size(), 3u) << "member " << i;
    EXPECT_EQ(st[i].front(), BarrierStatus::kOk) << "create ran before the crash";
    // Some barriers may have completed; the last one before destroy failed.
    EXPECT_EQ(st[i][st[i].size() - 2], BarrierStatus::kDeadline) << "member " << i;
    EXPECT_EQ(st[i].back(), BarrierStatus::kOk) << "destroy still succeeds locally";
    EXPECT_EQ(ms[i]->state(), GroupState::kFreed);
  }
  for (net::NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(f.cluster->nic(n).slots().in_use(), 0) << "slots must not leak, nic " << n;
  }
}

TEST(GroupLifecycleTest, MemberCrashDuringCreateFailsCleanlyByCtrlDeadline) {
  // Node 3's NIC is dead from t=0, so the create handshake can never
  // complete. There is no in-flight traffic to the dead node (unreliable
  // fabric), hence no kPeerDead — only ctrl_deadline ends the wait.
  host::ClusterParams cp;
  sim::fault::NicCrash crash;
  crash.node = 3;
  crash.at = sim::SimTime{0};
  cp.faults.nic_crashes.push_back(crash);
  Fixture f(4, cp);
  GroupConfig cfg = config(9);
  cfg.ctrl_deadline = 500_us;
  auto ms = f.make_members(cfg);
  std::vector<std::vector<BarrierStatus>> st(4);
  for (std::size_t i = 0; i < 3; ++i) {
    f.cluster->sim().spawn([](GroupMember& m, std::vector<BarrierStatus>* out) -> sim::Task {
      out->push_back(co_await m.run_create());
      out->push_back(co_await m.run_destroy());
    }(*ms[i], &st[i]));
  }
  f.cluster->sim().run();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(st[i].size(), 2u) << "member " << i;
    EXPECT_EQ(st[i][0], BarrierStatus::kDeadline) << "member " << i;
    EXPECT_EQ(st[i][1], BarrierStatus::kOk) << "destroy releases local state";
    EXPECT_EQ(ms[i]->state(), GroupState::kFreed);
  }
  for (net::NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(f.cluster->nic(n).slots().in_use(), 0) << "slots must not leak, nic " << n;
  }
}

}  // namespace
}  // namespace nicbar::coll
