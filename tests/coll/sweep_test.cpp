#include "coll/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace nicbar::coll {
namespace {

/// A small but heterogeneous plan: both locations, both algorithms (plain and
/// swept GB), two node counts, a lossy seeded config — everything the worker
/// pool has to keep deterministic.
SweepPlan mixed_plan() {
  SweepPlan plan;
  for (std::uint64_t seed : {1u, 7u}) {
    for (std::size_t n : {4u, 8u}) {
      ExperimentParams pe = experiment(nic::lanai43(), n, 50);
      pe.spec = spec(Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
      pe.seed = seed;
      plan.add("pe-n" + std::to_string(n) + "-s" + std::to_string(seed), pe);

      ExperimentParams gb = experiment(nic::lanai43(), n, 50);
      gb.spec = spec(Location::kHost, nic::BarrierAlgorithm::kGatherBroadcast);
      gb.seed = seed;
      plan.add_gb_sweep("gb-n" + std::to_string(n) + "-s" + std::to_string(seed), gb);
    }
  }
  ExperimentParams lossy = experiment(nic::lanai43(), 8, 50);
  lossy.spec = spec(Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
  lossy.cluster.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
  lossy.cluster.faults.seed = 3;
  lossy.cluster.faults.loss.push_back({"", 0.02});
  plan.add("lossy", lossy);
  return plan;
}

void expect_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.cases.size(), b.cases.size());
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    const CaseResult& x = a.cases[i];
    const CaseResult& y = b.cases[i];
    EXPECT_EQ(x.label, y.label);
    EXPECT_EQ(x.gb_dimension, y.gb_dimension);
    // Exact equality on purpose: parallel runs must replay the very same
    // deterministic simulation, not a numerically close one.
    EXPECT_EQ(x.result.mean_us, y.result.mean_us) << x.label;
    EXPECT_EQ(x.result.total_us, y.result.total_us) << x.label;
    EXPECT_EQ(x.result.barrier_packets_sent, y.result.barrier_packets_sent) << x.label;
    EXPECT_EQ(x.result.retransmissions, y.result.retransmissions) << x.label;
    EXPECT_EQ(x.result.barriers_completed, y.result.barriers_completed) << x.label;
    EXPECT_EQ(x.result.link_packets_dropped, y.result.link_packets_dropped) << x.label;
  }
}

TEST(SweepPlanTest, ParallelMatchesSerialBitExact) {
  const SweepPlan plan = mixed_plan();
  const SweepResult serial = plan.run({.workers = 1});
  for (unsigned workers : {2u, 4u, 8u}) {
    SweepOptions opts;
    opts.workers = workers;
    expect_identical(serial, plan.run(opts));
  }
}

TEST(SweepPlanTest, GbSweepMatchesBestGbDimension) {
  ExperimentParams p = experiment(nic::lanai43(), 8, 100);
  p.spec = spec(Location::kNic, nic::BarrierAlgorithm::kGatherBroadcast);
  const auto [best_dim, best_us] = best_gb_dimension(p);

  SweepPlan plan;
  plan.add_gb_sweep("gb", p);
  const SweepResult r = plan.run();
  EXPECT_EQ(r.cases[0].gb_dimension, best_dim);
  EXPECT_EQ(r.cases[0].result.mean_us, best_us);
  EXPECT_EQ(r.mean_us("gb"), best_us);
}

TEST(SweepPlanTest, SingleRunMatchesRunBarrierExperiment) {
  ExperimentParams p = experiment(nic::lanai72(), 8, 100);
  p.spec = spec(Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
  const ExperimentResult direct = run_barrier_experiment(p);

  SweepPlan plan;
  plan.add("one", p);
  const SweepResult r = plan.run();
  EXPECT_EQ(r.cases[0].result.mean_us, direct.mean_us);
  EXPECT_EQ(r.cases[0].result.barrier_packets_sent, direct.barrier_packets_sent);
}

TEST(SweepPlanTest, FindAndMeanThrowOnUnknownLabel) {
  SweepPlan plan;
  ExperimentParams p = experiment(nic::lanai43(), 4, 10);
  p.spec = spec(Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
  plan.add("known", p);
  const SweepResult r = plan.run();
  EXPECT_NO_THROW((void)r.find("known"));
  EXPECT_THROW((void)r.find("missing"), std::out_of_range);
  EXPECT_THROW((void)r.mean_us("missing"), std::out_of_range);
}

TEST(SweepPlanTest, InstrumentWithoutSinkThrows) {
  SweepPlan plan;
  ExperimentParams p = experiment(nic::lanai43(), 4, 10);
  p.spec = spec(Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
  plan.add("x", p);
  SweepOptions opts;
  opts.instrument = true;
  EXPECT_THROW((void)plan.run(opts), std::invalid_argument);
}

TEST(SweepPlanTest, GbSweepOnNonGbSpecThrows) {
  SweepPlan plan;
  ExperimentParams p = experiment(nic::lanai43(), 4, 10);
  p.spec = spec(Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
  plan.add_gb_sweep("bad", p);
  EXPECT_THROW((void)plan.run(), std::invalid_argument);
}

TEST(SweepPlanTest, CustomCasesShareTheSchedulingMachinery) {
  // Mix declarative and custom cases: results come back in plan order and
  // the custom body's return value is passed through untouched.
  SweepPlan plan;
  ExperimentParams p = experiment(nic::lanai43(), 4, 10);
  p.spec = spec(Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
  plan.add("declarative", p);
  plan.add_custom("custom", [](sim::telemetry::Telemetry* telemetry) {
    EXPECT_EQ(telemetry, nullptr);  // uninstrumented run: no bundle
    ExperimentResult r;
    r.mean_us = 42.5;
    r.barriers_completed = 7;
    return r;
  });
  const SweepResult r = plan.run();
  ASSERT_EQ(r.cases.size(), 2u);
  EXPECT_EQ(r.cases[0].label, "declarative");
  EXPECT_EQ(r.cases[1].label, "custom");
  EXPECT_EQ(r.mean_us("custom"), 42.5);
  EXPECT_EQ(r.find("custom").result.barriers_completed, 7u);
}

TEST(SweepPlanTest, CustomCasesAreDeterministicAcrossWorkerCounts) {
  // The --jobs contract extends to custom bodies: a deterministic body run
  // on 1 worker and on 8 produces the same results in the same order.
  SweepPlan plan;
  for (int i = 0; i < 6; ++i) {
    plan.add_custom(std::string("c") + std::to_string(i), [i](sim::telemetry::Telemetry*) {
      ExperimentResult r;
      r.mean_us = 10.0 * i;
      return r;
    });
  }
  const SweepResult serial = plan.run({.workers = 1});
  const SweepResult parallel = plan.run({.workers = 8});
  ASSERT_EQ(serial.cases.size(), parallel.cases.size());
  for (std::size_t i = 0; i < serial.cases.size(); ++i) {
    EXPECT_EQ(serial.cases[i].label, parallel.cases[i].label);
    EXPECT_EQ(serial.cases[i].result.mean_us, parallel.cases[i].result.mean_us);
  }
}

TEST(SweepPlanTest, AddCustomRejectsAnEmptyBody) {
  SweepPlan plan;
  EXPECT_THROW((void)plan.add_custom("null", CustomExperiment{}), std::invalid_argument);
}

TEST(SweepPlanTest, CustomCaseCannotBeGbSwept) {
  SweepPlan plan;
  SweepCase& c = plan.add_custom("custom", [](sim::telemetry::Telemetry*) {
    return ExperimentResult{};
  });
  c.sweep_gb_dimension = true;
  EXPECT_THROW((void)plan.run(), std::invalid_argument);
}

/// Counts `"bench": "<label>"` keys in file order — one per instrumented case.
std::vector<std::string> bench_labels(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> labels;
  std::string line;
  while (std::getline(in, line)) {
    const std::string key = "\"bench\": \"";
    const std::size_t at = line.find(key);
    if (at == std::string::npos) continue;
    const std::size_t start = at + key.size();
    labels.push_back(line.substr(start, line.find('"', start) - start));
  }
  return labels;
}

TEST(SweepPlanTest, CustomCasesSeeTheTelemetryBundleWhenInstrumented) {
  const std::string path = ::testing::TempDir() + "/custom_metrics.json";
  std::remove(path.c_str());
  SweepPlan plan;
  plan.add_custom("instrumented-custom", [](sim::telemetry::Telemetry* telemetry) {
    EXPECT_NE(telemetry, nullptr);
    return ExperimentResult{};
  });
  SweepOptions opts;
  opts.instrument = true;
  MetricsSink sink{path};
  ASSERT_TRUE(sink.ok());
  opts.sink = &sink;
  (void)plan.run(opts);
  const std::vector<std::string> labels = bench_labels(path);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], "instrumented-custom");
  std::remove(path.c_str());
}

TEST(SweepPlanTest, InstrumentedRunsEmitDocsInPlanOrder) {
  const std::string path = ::testing::TempDir() + "/sweep_metrics.json";
  std::remove(path.c_str());
  const SweepPlan plan = mixed_plan();

  SweepOptions opts;
  opts.workers = 4;
  opts.instrument = true;
  MetricsSink sink{path};
  ASSERT_TRUE(sink.ok());
  opts.sink = &sink;
  const SweepResult instrumented = plan.run(opts);

  // Instrumentation must not perturb the simulated timeline.
  expect_identical(plan.run({.workers = 1}), instrumented);

  const std::vector<std::string> labels = bench_labels(path);
  ASSERT_EQ(labels.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(labels[i], plan.cases()[i].label) << "doc " << i << " out of plan order";
  }
  std::remove(path.c_str());
}

TEST(MetricsSinkTest, ConcurrentWritersKeepDocumentsIntact) {
  const std::string path = ::testing::TempDir() + "/sink_race.json";
  std::remove(path.c_str());
  {
    MetricsSink sink{path};
    ASSERT_TRUE(sink.ok());
    std::vector<std::thread> writers;
    for (int t = 0; t < 8; ++t) {
      writers.emplace_back([&sink, t] {
        const std::string doc = "{\"writer\": " + std::to_string(t) + "}";
        for (int i = 0; i < 200; ++i) sink.write_line(doc);
      });
    }
    for (std::thread& w : writers) w.join();
  }
  std::ifstream in(path);
  std::string line;
  std::size_t docs = 0;
  while (std::getline(in, line)) {
    ASSERT_EQ(line.rfind("{\"writer\": ", 0), 0u) << "torn document: " << line;
    ASSERT_EQ(line.back(), '}') << "torn document: " << line;
    ++docs;
  }
  EXPECT_EQ(docs, 8u * 200u);
  std::remove(path.c_str());
}

TEST(SweepBuildersTest, ExperimentAndSpecFillParams) {
  const ExperimentParams p = experiment(nic::lanai72(), 16, 42);
  EXPECT_EQ(p.nodes, 16u);
  EXPECT_EQ(p.reps, 42);
  EXPECT_EQ(p.cluster.nic.model, nic::lanai72().model);

  const BarrierSpec s = spec(Location::kHost, nic::BarrierAlgorithm::kGatherBroadcast, 3);
  EXPECT_EQ(s.location, Location::kHost);
  EXPECT_EQ(s.algorithm, nic::BarrierAlgorithm::kGatherBroadcast);
  EXPECT_EQ(s.gb_dimension, 3u);
}

TEST(SweepBuildersTest, VariantLabelNamesTheConfig) {
  ExperimentParams p = experiment(nic::lanai43(), 8);
  p.spec = spec(Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
  const std::string label = variant_label(p);
  EXPECT_NE(label.find("nic"), std::string::npos);
  EXPECT_NE(label.find("pe"), std::string::npos);
  EXPECT_NE(label.find("n8"), std::string::npos);
}

}  // namespace
}  // namespace nicbar::coll
