// Paper-shape regression guards: the qualitative results of Buntinas et al.
// (Fig. 5) that this repository exists to reproduce. If a future change to
// the cost model breaks any of these, the reproduction is broken — these
// tests pin the shape (and loosely the headline numbers) down.
#include <gtest/gtest.h>

#include "coll/runner.hpp"

namespace nicbar {
namespace {

using coll::Location;
using nic::BarrierAlgorithm;

double mean_us(const nic::NicConfig& cfg, std::size_t nodes, Location loc,
               BarrierAlgorithm alg, std::size_t dim = 2) {
  coll::ExperimentParams p;
  p.nodes = nodes;
  p.reps = 60;
  p.cluster.nic = cfg;
  p.spec.location = loc;
  p.spec.algorithm = alg;
  p.spec.gb_dimension = dim;
  return coll::run_barrier_experiment(p).mean_us;
}

double best_gb_us(const nic::NicConfig& cfg, std::size_t nodes, Location loc) {
  coll::ExperimentParams p;
  p.nodes = nodes;
  p.reps = 60;
  p.cluster.nic = cfg;
  p.spec.location = loc;
  p.spec.algorithm = BarrierAlgorithm::kGatherBroadcast;
  return coll::best_gb_dimension(p).second;
}

TEST(PaperShapeTest, HeadlineNicPe16NodesNear102us) {
  // Paper: 102.14us on LANai 4.3. Calibration target: within 10%.
  const double us = mean_us(nic::lanai43(), 16, Location::kNic,
                            BarrierAlgorithm::kPairwiseExchange);
  EXPECT_NEAR(us, 102.14, 10.2);
}

TEST(PaperShapeTest, HeadlineImprovement16NodesNear178) {
  const double nic_us = mean_us(nic::lanai43(), 16, Location::kNic,
                                BarrierAlgorithm::kPairwiseExchange);
  const double host_us = mean_us(nic::lanai43(), 16, Location::kHost,
                                 BarrierAlgorithm::kPairwiseExchange);
  EXPECT_NEAR(host_us / nic_us, 1.78, 0.15);
}

TEST(PaperShapeTest, HeadlineLanai72EightNodes) {
  // Paper: NIC-PE 49.25us vs host-PE 90.24us (1.83x).
  const double nic_us = mean_us(nic::lanai72(), 8, Location::kNic,
                                BarrierAlgorithm::kPairwiseExchange);
  const double host_us = mean_us(nic::lanai72(), 8, Location::kHost,
                                 BarrierAlgorithm::kPairwiseExchange);
  EXPECT_NEAR(nic_us, 49.25, 5.0);
  EXPECT_NEAR(host_us, 90.24, 9.0);
  EXPECT_NEAR(host_us / nic_us, 1.83, 0.15);
}

TEST(PaperShapeTest, NicPeWinsAtEverySize) {
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    const double nic_pe = mean_us(nic::lanai43(), n, Location::kNic,
                                  BarrierAlgorithm::kPairwiseExchange);
    EXPECT_LT(nic_pe, mean_us(nic::lanai43(), n, Location::kHost,
                              BarrierAlgorithm::kPairwiseExchange))
        << n;
    if (n > 2) {
      EXPECT_LT(nic_pe, best_gb_us(nic::lanai43(), n, Location::kNic)) << n;
    }
  }
}

TEST(PaperShapeTest, GbCrossoverAtTwoNodesOnly) {
  // §6: "The NIC-based GB barrier performed worse for the two node barrier
  // than the host-based GB barrier ... because of the overhead of
  // processing the barrier algorithm at the NIC" — and better at N >= 4.
  EXPECT_GT(mean_us(nic::lanai43(), 2, Location::kNic, BarrierAlgorithm::kGatherBroadcast, 1),
            mean_us(nic::lanai43(), 2, Location::kHost, BarrierAlgorithm::kGatherBroadcast, 1));
  for (std::size_t n : {4u, 8u, 16u}) {
    EXPECT_LT(best_gb_us(nic::lanai43(), n, Location::kNic),
              best_gb_us(nic::lanai43(), n, Location::kHost))
        << n;
  }
}

TEST(PaperShapeTest, HostPeBeatsHostGbEverywhere) {
  for (std::size_t n : {4u, 8u, 16u}) {
    EXPECT_LT(mean_us(nic::lanai43(), n, Location::kHost,
                      BarrierAlgorithm::kPairwiseExchange),
              best_gb_us(nic::lanai43(), n, Location::kHost))
        << n;
  }
}

TEST(PaperShapeTest, FasterNicRaisesImprovementAtEightNodes) {
  // Paper: 1.66x (LANai 4.3) -> 1.83x (LANai 7.2) for the 8-node PE barrier.
  auto improvement = [](const nic::NicConfig& cfg) {
    return mean_us(cfg, 8, Location::kHost, BarrierAlgorithm::kPairwiseExchange) /
           mean_us(cfg, 8, Location::kNic, BarrierAlgorithm::kPairwiseExchange);
  };
  const double i43 = improvement(nic::lanai43());
  const double i72 = improvement(nic::lanai72());
  EXPECT_NEAR(i43, 1.66, 0.15);
  EXPECT_NEAR(i72, 1.83, 0.15);
  EXPECT_GT(i72, i43);
}

}  // namespace
}  // namespace nicbar
