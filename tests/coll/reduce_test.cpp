// NIC-based and host-based allreduce (§8 extension): value correctness
// across operations, sizes, tree dimensions, and skew; NIC beats host.
#include "coll/reduce.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using coll::Location;
using coll::ReduceMember;
using nic::ReduceOp;

std::int64_t reference_reduce(ReduceOp op, const std::vector<std::int64_t>& vals) {
  std::int64_t acc = vals[0];
  for (std::size_t i = 1; i < vals.size(); ++i) acc = nic::apply_reduce_op(op, acc, vals[i]);
  return acc;
}

struct RunResult {
  std::vector<std::int64_t> results;
  double elapsed_us = 0;
};

RunResult run_allreduce(std::size_t n, Location loc, ReduceOp op,
                        const std::vector<std::int64_t>& contributions,
                        std::size_t dimension = 2, bool skew = false, int reps = 1) {
  host::ClusterParams cp;
  cp.nodes = n;
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group;
  for (std::size_t i = 0; i < n; ++i) {
    group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
  }
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<ReduceMember>> members;
  RunResult out;
  out.results.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ports.push_back(cluster.open_port(static_cast<net::NodeId>(i), 2));
    members.push_back(
        std::make_unique<ReduceMember>(*ports.back(), group, loc, op, dimension));
    cluster.sim().spawn([](sim::Simulator& sim, ReduceMember& m, std::int64_t v,
                           std::int64_t* res, sim::Duration d, int r) -> sim::Task {
      if (!d.is_zero()) co_await sim.delay(d);
      for (int k = 0; k < r; ++k) {
        *res = co_await m.allreduce(v + k);  // vary contribution per round
      }
    }(cluster.sim(), *members.back(), contributions[i], &out.results[i],
      skew ? sim::microseconds(43.0 * static_cast<double>(i)) : sim::Duration{0}, reps));
  }
  cluster.sim().run();
  out.elapsed_us = cluster.sim().now().us();
  return out;
}

std::vector<std::int64_t> iota_vals(std::size_t n, std::int64_t base = 1) {
  std::vector<std::int64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = base + static_cast<std::int64_t>(i);
  return v;
}

class AllreduceOps : public ::testing::TestWithParam<ReduceOp> {};

TEST_P(AllreduceOps, NicValueMatchesReference) {
  const ReduceOp op = GetParam();
  const auto vals = iota_vals(8, 3);
  const RunResult r = run_allreduce(8, Location::kNic, op, vals);
  const std::int64_t expect = reference_reduce(op, vals);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(r.results[i], expect) << "node " << i;
}

TEST_P(AllreduceOps, HostValueMatchesReference) {
  const ReduceOp op = GetParam();
  const auto vals = iota_vals(8, 3);
  const RunResult r = run_allreduce(8, Location::kHost, op, vals);
  const std::int64_t expect = reference_reduce(op, vals);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(r.results[i], expect) << "node " << i;
}

INSTANTIATE_TEST_SUITE_P(Ops, AllreduceOps,
                         ::testing::Values(ReduceOp::kSum, ReduceOp::kProd, ReduceOp::kMin,
                                           ReduceOp::kMax, ReduceOp::kBitAnd,
                                           ReduceOp::kBitOr),
                         [](const auto& info) { return nic::to_string(info.param); });

class AllreduceSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllreduceSizes, SumAcrossSizesNic) {
  const std::size_t n = GetParam();
  const auto vals = iota_vals(n);
  const RunResult r = run_allreduce(n, Location::kNic, ReduceOp::kSum, vals);
  const auto sn = static_cast<std::int64_t>(n);
  const std::int64_t expect = sn * (sn + 1) / 2;
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(r.results[i], expect);
}

TEST_P(AllreduceSizes, SumAcrossSizesHost) {
  const std::size_t n = GetParam();
  const auto vals = iota_vals(n);
  const RunResult r = run_allreduce(n, Location::kHost, ReduceOp::kSum, vals);
  const auto sn = static_cast<std::int64_t>(n);
  const std::int64_t expect = sn * (sn + 1) / 2;
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(r.results[i], expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllreduceSizes,
                         ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{3},
                                           std::size_t{5}, std::size_t{8}, std::size_t{13},
                                           std::size_t{16}));

TEST(AllreduceTest, EveryTreeDimensionGivesSameValue) {
  const auto vals = iota_vals(12, 10);
  const std::int64_t expect = reference_reduce(ReduceOp::kSum, vals);
  for (std::size_t dim = 1; dim < 12; ++dim) {
    const RunResult r = run_allreduce(12, Location::kNic, ReduceOp::kSum, vals, dim);
    for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(r.results[i], expect) << "dim " << dim;
  }
}

TEST(AllreduceTest, SkewedEntryStillCorrect) {
  const auto vals = iota_vals(8, -4);  // includes negatives and zero
  const RunResult r = run_allreduce(8, Location::kNic, ReduceOp::kMin, vals, 2, true);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(r.results[i], -4);
}

TEST(AllreduceTest, ConsecutiveRoundsUseFreshContributions) {
  // reps=3 with contribution v+k per round: final result is sum of (v_i + 2).
  const auto vals = iota_vals(4);
  const RunResult r = run_allreduce(4, Location::kNic, ReduceOp::kSum, vals, 2, false, 3);
  const std::int64_t expect = (1 + 2) + (2 + 2) + (3 + 2) + (4 + 2);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(r.results[i], expect);
}

TEST(AllreduceTest, NicFasterThanHost) {
  const auto vals = iota_vals(16);
  const RunResult host = run_allreduce(16, Location::kHost, ReduceOp::kSum, vals, 4, false, 10);
  const RunResult nic_r = run_allreduce(16, Location::kNic, ReduceOp::kSum, vals, 4, false, 10);
  EXPECT_LT(nic_r.elapsed_us, host.elapsed_us);
}

TEST(AllreduceTest, ReduceCountersTrack) {
  host::ClusterParams cp;
  cp.nodes = 2;
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  ReduceMember m0(*p0, group, Location::kNic, ReduceOp::kSum);
  ReduceMember m1(*p1, group, Location::kNic, ReduceOp::kSum);
  std::int64_t r0 = 0, r1 = 0;
  cluster.sim().spawn([](ReduceMember& m, std::int64_t* r) -> sim::Task {
    *r = co_await m.allreduce(5);
  }(m0, &r0));
  cluster.sim().spawn([](ReduceMember& m, std::int64_t* r) -> sim::Task {
    *r = co_await m.allreduce(7);
  }(m1, &r1));
  cluster.sim().run();
  EXPECT_EQ(r0, 12);
  EXPECT_EQ(r1, 12);
  EXPECT_EQ(cluster.nic(0).stats().reduces_started, 1u);
  EXPECT_EQ(cluster.nic(0).stats().reduces_completed, 1u);
  EXPECT_EQ(cluster.nic(1).stats().reduces_completed, 1u);
}

TEST(AllreduceTest, ConcurrentReduceOnBarrierPortThrows) {
  // The unexpected-record bit array is shared: a port may run one collective
  // at a time. Starting a reduce while a barrier is active is a host bug.
  host::ClusterParams cp;
  cp.nodes = 2;
  host::Cluster cluster(cp);
  auto p0 = cluster.open_port(0, 2);
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    nic::BarrierToken btok;
    btok.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
    btok.peers = {gm::Endpoint{1, 2}};
    co_await port.provide_barrier_buffer();
    (void)co_await port.barrier_send(std::move(btok));  // never completes (peer absent)
    nic::ReduceToken rtok;
    rtok.op = nic::ReduceOp::kSum;
    (void)co_await port.reduce_send(std::move(rtok));
  }(*p0));
  EXPECT_THROW(cluster.sim().run(), std::logic_error);
}

TEST(AllreduceTest, LateJoinerRecoveredByClosedPortMachinery) {
  // A child's partial reaches a parent whose port is still closed; the §3.2
  // record-then-reject flush must re-deliver it (value intact).
  host::ClusterParams cp;
  cp.nodes = 2;
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};
  auto root = cluster.make_port(0, 2);  // root's port opens late
  auto leaf = cluster.open_port(1, 2);

  std::int64_t leaf_result = 0, root_result = 0;
  cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> g,
                         std::int64_t* out) -> sim::Task {
    ReduceMember m(port, g, Location::kNic, ReduceOp::kSum);
    *out = co_await m.allreduce(11);
  }(*leaf, group, &leaf_result));
  cluster.sim().spawn([](sim::Simulator& sim, gm::Port& port, std::vector<gm::Endpoint> g,
                         std::int64_t* out) -> sim::Task {
    co_await sim.delay(2_ms);
    port.open();
    ReduceMember m(port, g, Location::kNic, ReduceOp::kSum);
    *out = co_await m.allreduce(31);
  }(cluster.sim(), *root, group, &root_result));
  cluster.sim().run(sim::SimTime{0} + 100_ms);
  EXPECT_EQ(root_result, 42);
  EXPECT_EQ(leaf_result, 42);
}

}  // namespace
}  // namespace nicbar
