// The experiment runner: determinism, measurement sanity, dimension sweep.
#include "coll/runner.hpp"

#include <gtest/gtest.h>

namespace nicbar::coll {
namespace {

ExperimentParams pe_params(std::size_t nodes, int reps = 50) {
  ExperimentParams p;
  p.nodes = nodes;
  p.reps = reps;
  p.spec.location = Location::kNic;
  p.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  return p;
}

TEST(RunnerTest, DeterministicAcrossRuns) {
  // The whole point of a simulation substrate: identical inputs give
  // bit-identical outputs.
  const ExperimentResult a = run_barrier_experiment(pe_params(8));
  const ExperimentResult b = run_barrier_experiment(pe_params(8));
  EXPECT_EQ(a.mean_us, b.mean_us);
  EXPECT_EQ(a.total_us, b.total_us);
  EXPECT_EQ(a.barrier_packets_sent, b.barrier_packets_sent);
}

TEST(RunnerTest, SkewIsDeterministicPerSeed) {
  ExperimentParams p = pe_params(8);
  p.max_start_skew = sim::microseconds(300.0);
  p.seed = 42;
  const double a = run_barrier_experiment(p).mean_us;
  const double b = run_barrier_experiment(p).mean_us;
  EXPECT_EQ(a, b);
  p.seed = 43;
  const double c = run_barrier_experiment(p).mean_us;
  EXPECT_NE(a, c);
}

TEST(RunnerTest, MeanScalesWithLog2Nodes) {
  const double t2 = run_barrier_experiment(pe_params(2)).mean_us;
  const double t4 = run_barrier_experiment(pe_params(4)).mean_us;
  const double t16 = run_barrier_experiment(pe_params(16)).mean_us;
  // Each doubling adds roughly one fixed round (Eq. 2).
  const double round = t4 - t2;
  EXPECT_GT(round, 0);
  EXPECT_NEAR(t16, t2 + 3 * round, 0.2 * t16);
}

TEST(RunnerTest, AllBarriersAccountedFor) {
  const ExperimentResult r = run_barrier_experiment(pe_params(4, 25));
  EXPECT_EQ(r.barriers_completed, 4u * 25u);
  EXPECT_EQ(r.reps, 25);
  EXPECT_EQ(r.nodes, 4u);
  // 4-node PE: 2 packets per node per barrier.
  EXPECT_EQ(r.barrier_packets_sent, 4u * 25u * 2u);
}

TEST(RunnerTest, MoreRepsDontChangeTheMeanMuch) {
  const double short_run = run_barrier_experiment(pe_params(8, 20)).mean_us;
  const double long_run = run_barrier_experiment(pe_params(8, 200)).mean_us;
  EXPECT_NEAR(short_run, long_run, 0.05 * long_run);
}

TEST(RunnerTest, BestGbDimensionIsValidAndMinimal) {
  ExperimentParams p = pe_params(8, 40);
  p.spec.algorithm = nic::BarrierAlgorithm::kGatherBroadcast;
  const auto [dim, best_us] = best_gb_dimension(p);
  EXPECT_GE(dim, 1u);
  EXPECT_LT(dim, 8u);
  // Verify the reported minimum really is the minimum of the sweep.
  for (std::size_t d = 1; d < 8; ++d) {
    p.spec.gb_dimension = d;
    EXPECT_GE(run_barrier_experiment(p).mean_us, best_us - 1e-9) << "dim " << d;
  }
}

TEST(RunnerTest, BestGbDimensionRejectsPe) {
  ExperimentParams p = pe_params(8);
  EXPECT_THROW((void)best_gb_dimension(p), std::invalid_argument);
}

TEST(RunnerTest, RejectsZeroNodes) {
  ExperimentParams p = pe_params(0);
  EXPECT_THROW((void)run_barrier_experiment(p), std::invalid_argument);
}

TEST(RunnerTest, SingleNodeBarrierIsTrivial) {
  const ExperimentResult r = run_barrier_experiment(pe_params(1, 10));
  EXPECT_EQ(r.barriers_completed, 10u);
  EXPECT_EQ(r.barrier_packets_sent, 0u);  // nobody to talk to
  EXPECT_GT(r.mean_us, 0.0);              // still pays initiation + completion
}

TEST(RunnerTest, StatsAggregateAcrossNics) {
  ExperimentParams p = pe_params(16, 10);
  p.max_start_skew = sim::microseconds(400.0);
  const ExperimentResult r = run_barrier_experiment(p);
  EXPECT_GT(r.unexpected_recorded, 0u);
  EXPECT_EQ(r.bit_collisions, 0u);
  EXPECT_EQ(r.retransmissions, 0u);  // lossless fabric
}

}  // namespace
}  // namespace nicbar::coll
