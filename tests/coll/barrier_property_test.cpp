// Property sweep: the barrier-semantics invariant (nobody exits before
// everybody entered) must hold for EVERY combination of location, algorithm,
// group size, reliability mode, and entry skew — plus run-to-run determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "coll/runner.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using coll::BarrierMember;
using coll::BarrierSpec;
using coll::Location;
using nic::BarrierAlgorithm;
using nic::BarrierReliability;

using Combo = std::tuple<Location, BarrierAlgorithm, std::size_t, BarrierReliability>;

class BarrierProperty : public ::testing::TestWithParam<Combo> {};

TEST_P(BarrierProperty, NoEarlyExitUnderSkew) {
  const Location loc = std::get<0>(GetParam());
  const BarrierAlgorithm alg = std::get<1>(GetParam());
  const std::size_t n = std::get<2>(GetParam());
  const BarrierReliability rel = std::get<3>(GetParam());

  host::ClusterParams cp;
  cp.nodes = n;
  cp.nic.barrier_reliability = rel;
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group;
  for (std::size_t i = 0; i < n; ++i) {
    group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
  }
  BarrierSpec spec;
  spec.location = loc;
  spec.algorithm = alg;
  spec.gb_dimension = 3;

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<BarrierMember>> members;
  std::vector<sim::SimTime> entered(n), exited(n);
  sim::Rng rng(1234 + n);
  for (std::size_t i = 0; i < n; ++i) {
    ports.push_back(cluster.open_port(static_cast<net::NodeId>(i), 2));
    members.push_back(std::make_unique<BarrierMember>(*ports.back(), group, spec));
    const sim::Duration skew = sim::microseconds(rng.uniform(0.0, 400.0));
    cluster.sim().spawn([](sim::Simulator& sim, BarrierMember& m, sim::Duration d,
                           sim::SimTime* in, sim::SimTime* out) -> sim::Task {
      co_await sim.delay(d);
      *in = sim.now();
      for (int r = 0; r < 3; ++r) co_await m.run();  // three consecutive barriers
      *out = sim.now();
    }(cluster.sim(), *members.back(), skew, &entered[i], &exited[i]));
  }
  cluster.sim().run();

  const sim::SimTime last_entry = *std::max_element(entered.begin(), entered.end());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_GT(exited[i].ps(), 0) << "member " << i << " never finished";
    EXPECT_GE(exited[i].ps(), last_entry.ps()) << "member " << i << " left early";
  }
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  std::string s = std::get<0>(info.param) == Location::kHost ? "Host" : "Nic";
  s += std::get<1>(info.param) == BarrierAlgorithm::kPairwiseExchange ? "PE" : "GB";
  s += std::to_string(std::get<2>(info.param));
  switch (std::get<3>(info.param)) {
    case BarrierReliability::kUnreliable: s += "Unrel"; break;
    case BarrierReliability::kSharedStream: s += "Shared"; break;
    case BarrierReliability::kSeparateAcks: s += "SepAck"; break;
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BarrierProperty,
    ::testing::Combine(::testing::Values(Location::kHost, Location::kNic),
                       ::testing::Values(BarrierAlgorithm::kPairwiseExchange,
                                         BarrierAlgorithm::kGatherBroadcast),
                       ::testing::Values(std::size_t{2}, std::size_t{3}, std::size_t{8},
                                         std::size_t{13}, std::size_t{16}),
                       ::testing::Values(BarrierReliability::kUnreliable,
                                         BarrierReliability::kSharedStream,
                                         BarrierReliability::kSeparateAcks)),
    combo_name);

// --- Determinism across the whole matrix ---------------------------------------

class BarrierDeterminism
    : public ::testing::TestWithParam<std::tuple<Location, BarrierAlgorithm>> {};

TEST_P(BarrierDeterminism, IdenticalRunsProduceIdenticalLatencies) {
  coll::ExperimentParams p;
  p.nodes = 8;
  p.reps = 20;
  p.spec.location = std::get<0>(GetParam());
  p.spec.algorithm = std::get<1>(GetParam());
  p.max_start_skew = sim::microseconds(200.0);
  p.seed = 77;
  const coll::ExperimentResult a = coll::run_barrier_experiment(p);
  const coll::ExperimentResult b = coll::run_barrier_experiment(p);
  EXPECT_EQ(a.total_us, b.total_us);
  EXPECT_EQ(a.barrier_packets_sent, b.barrier_packets_sent);
  EXPECT_EQ(a.unexpected_recorded, b.unexpected_recorded);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BarrierDeterminism,
    ::testing::Combine(::testing::Values(Location::kHost, Location::kNic),
                       ::testing::Values(BarrierAlgorithm::kPairwiseExchange,
                                         BarrierAlgorithm::kGatherBroadcast)),
    [](const auto& info) {
      std::string s = std::get<0>(info.param) == Location::kHost ? "Host" : "Nic";
      s += std::get<1>(info.param) == BarrierAlgorithm::kPairwiseExchange ? "PE" : "GB";
      return s;
    });

// --- Latency-ordering properties -------------------------------------------------

TEST(BarrierOrderProperty, LatencyMonotoneInGroupSize) {
  for (Location loc : {Location::kHost, Location::kNic}) {
    double prev = 0.0;
    for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
      coll::ExperimentParams p;
      p.nodes = n;
      p.reps = 30;
      p.spec.location = loc;
      p.spec.algorithm = BarrierAlgorithm::kPairwiseExchange;
      const double us = coll::run_barrier_experiment(p).mean_us;
      EXPECT_GT(us, prev) << "n=" << n;
      prev = us;
    }
  }
}

TEST(BarrierOrderProperty, ImprovementMonotoneInGroupSize) {
  double prev = 0.0;
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    coll::ExperimentParams p;
    p.nodes = n;
    p.reps = 30;
    p.spec.algorithm = BarrierAlgorithm::kPairwiseExchange;
    p.spec.location = Location::kHost;
    const double host_us = coll::run_barrier_experiment(p).mean_us;
    p.spec.location = Location::kNic;
    const double nic_us = coll::run_barrier_experiment(p).mean_us;
    const double f = host_us / nic_us;
    EXPECT_GT(f, prev) << "n=" << n;
    prev = f;
  }
}

}  // namespace
}  // namespace nicbar
