// The two-level hierarchical NIC barrier as a first-class coll:: family:
// completion accounting on fat-tree/leaf-spine fabrics, the degenerate
// block shapes, the managed GroupMember path, sweep determinism across
// worker counts, and the flat-topology Fig. 5 bit-identity goldens (the
// hierarchical family must not perturb the calibrated flat numbers by even
// one picosecond).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "coll/group.hpp"
#include "coll/runner.hpp"
#include "coll/sweep.hpp"
#include "host/cluster.hpp"
#include "nic/config.hpp"

namespace nicbar::coll {
namespace {

using namespace sim::literals;

/// Experiment on the bench-style fat-tree: radix 8 at 3:1 oversubscription
/// puts h = 6 hosts per leaf — deliberately not a power of two, so the
/// intra-block tree and the inter-representative PE fold both get exercised,
/// and N = 100 leaves a partial last leaf (4 members).
ExperimentParams fat_tree_params(std::size_t nodes, int reps = 10) {
  ExperimentParams p = experiment(nic::lanai43(), nodes, reps);
  p.cluster.topology = host::Topology::kFatTree;
  p.cluster.fabric_radix = 8;
  p.cluster.fabric_oversub = 3;
  return p;
}

TEST(HierBarrierTest, AllBarriersCompleteOnFatTree) {
  ExperimentParams p = fat_tree_params(64);
  p.spec = hier_spec(2, 0);  // block size derived from the fabric (h = 6)
  const ExperimentResult r = run_barrier_experiment(p);
  EXPECT_EQ(r.barriers_completed, 64u * 10u);
  EXPECT_EQ(r.barrier_failures, 0u);
  EXPECT_EQ(r.stalled_members, 0u);
  EXPECT_GT(r.mean_us, 0.0);
}

TEST(HierBarrierTest, PartialLastLeafCompletes) {
  // N = 100 on h = 6: 17 blocks, the last with 4 members.
  ExperimentParams p = fat_tree_params(100, 5);
  p.spec = hier_spec(2, 0);
  const ExperimentResult r = run_barrier_experiment(p);
  EXPECT_EQ(r.barriers_completed, 100u * 5u);
  EXPECT_EQ(r.barrier_failures, 0u);
  EXPECT_EQ(r.stalled_members, 0u);
}

TEST(HierBarrierTest, CompletesOnLeafSpine) {
  ExperimentParams p = fat_tree_params(24, 10);
  p.cluster.topology = host::Topology::kLeafSpine;
  p.spec = hier_spec(2, 0);
  const ExperimentResult r = run_barrier_experiment(p);
  EXPECT_EQ(r.barriers_completed, 24u * 10u);
  EXPECT_EQ(r.barrier_failures, 0u);
}

TEST(HierBarrierTest, DegenerateOneBlockIsAFlatGatherTree) {
  // Flat single-switch topology, hier_block 0 and no fabric: the whole
  // group is one block — a gather tree with a star release, no PE phase.
  ExperimentParams p = experiment(nic::lanai43(), 8, 20);
  p.spec = hier_spec(2, 0);
  const ExperimentResult r = run_barrier_experiment(p);
  EXPECT_EQ(r.barriers_completed, 8u * 20u);
  EXPECT_EQ(r.barrier_failures, 0u);
}

TEST(HierBarrierTest, DegenerateOneMemberBlocksAreFlatPe) {
  // Block size 1: every member is its own representative — the inter-rep
  // exchange degenerates to flat PE over the whole group.
  ExperimentParams p = experiment(nic::lanai43(), 8, 20);
  p.spec = hier_spec(2, 1);
  const ExperimentResult hier = run_barrier_experiment(p);
  EXPECT_EQ(hier.barriers_completed, 8u * 20u);
  ExperimentParams pe = experiment(nic::lanai43(), 8, 20);
  pe.spec = spec(Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
  // Same schedule shape as flat PE, so the same number of network rounds;
  // only the per-member hierarchical token bookkeeping differs.
  EXPECT_EQ(hier.barrier_packets_sent, run_barrier_experiment(pe).barrier_packets_sent);
}

TEST(HierBarrierTest, ManagedGroupRunsHierarchical) {
  host::ClusterParams cp;
  cp.nodes = 8;
  cp.topology = host::Topology::kFatTree;
  cp.fabric_radix = 4;  // h = 2: four 2-member blocks
  cp.fabric_oversub = 1;
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group;
  std::vector<std::unique_ptr<gm::Port>> ports;
  for (net::NodeId n = 0; n < 8; ++n) {
    group.push_back(gm::Endpoint{n, 2});
    ports.push_back(cluster.open_port(n, 2));
  }
  GroupConfig cfg;
  cfg.id = 11;
  cfg.hierarchical = true;
  cfg.hier_block = 2;
  cfg.ctrl_deadline = 5_ms;
  std::vector<std::unique_ptr<GroupMember>> ms;
  for (auto& p : ports) ms.push_back(std::make_unique<GroupMember>(*p, group, cfg));
  std::vector<std::vector<BarrierStatus>> st(8);
  for (std::size_t i = 0; i < 8; ++i) {
    cluster.sim().spawn([](GroupMember& m, std::vector<BarrierStatus>* out) -> sim::Task {
      out->push_back(co_await m.run_create());
      for (int b = 0; b < 3; ++b) out->push_back(co_await m.run_barrier());
      out->push_back(co_await m.run_destroy());
    }(*ms[i], &st[i]));
  }
  cluster.sim().run();
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_EQ(st[i].size(), 5u) << "member " << i;
    for (const BarrierStatus s : st[i]) EXPECT_EQ(s, BarrierStatus::kOk) << "member " << i;
    EXPECT_EQ(ms[i]->barriers_run(), 3u);
    EXPECT_EQ(ms[i]->degraded_barriers(), 0u);
  }
}

TEST(HierBarrierTest, SweepByteIdenticalAcrossWorkerCounts) {
  // The determinism contract the bench relies on: the (case, worker-count)
  // grid must produce bit-identical results — exact integer picoseconds —
  // for any NICBAR_JOBS value, and for repeated runs.
  auto plan = [] {
    SweepPlan pl;
    ExperimentParams pe = fat_tree_params(100, 3);
    pe.spec = spec(Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
    pl.add("pe", pe);
    ExperimentParams hier = fat_tree_params(100, 3);
    hier.spec = hier_spec(2, 0);
    pl.add("hier", hier);
    ExperimentParams dissem = fat_tree_params(100, 3);
    dissem.spec = rdma_spec(RdmaAlgorithm::kDissemination);
    pl.add("dissem", dissem);
    return pl;
  };
  const SweepResult serial = plan().run({.workers = 1});
  const SweepResult again = plan().run({.workers = 1});
  const SweepResult sharded = plan().run({.workers = 4});
  ASSERT_EQ(serial.cases.size(), 3u);
  for (std::size_t i = 0; i < serial.cases.size(); ++i) {
    const ExperimentResult& a = serial.cases[i].result;
    for (const SweepResult* other : {&again, &sharded}) {
      const ExperimentResult& b = other->cases[i].result;
      EXPECT_EQ(a.total.ps(), b.total.ps()) << serial.cases[i].label;
      EXPECT_EQ(a.mean_us, b.mean_us) << serial.cases[i].label;
      EXPECT_EQ(a.barrier_packets_sent, b.barrier_packets_sent) << serial.cases[i].label;
      EXPECT_EQ(a.barriers_completed, b.barriers_completed) << serial.cases[i].label;
    }
  }
}

// Fig. 5 flat-topology bit-identity: the calibrated single-switch numbers
// (the paper reproduction this repo exists for) must survive the fabric/
// hierarchical subsystem untouched. These are exact-equality goldens on the
// integer-picosecond totals — if a change moves them at all, it changed the
// flat cost model and must be recalibrated deliberately, not absorbed here.
struct Golden {
  const char* what;
  Location loc;
  nic::BarrierAlgorithm alg;
  std::int64_t total_ps;
};

TEST(HierBarrierTest, FlatFig5TotalsAreBitIdentical) {
  const Golden goldens[] = {
      {"host-pe-n16", Location::kHost, nic::BarrierAlgorithm::kPairwiseExchange,
       18209210800},
      {"nic-pe-n16", Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange,
       10100150600},
      {"nic-gb-n16", Location::kNic, nic::BarrierAlgorithm::kGatherBroadcast,
       26440735475},
  };
  for (const Golden& g : goldens) {
    ExperimentParams p = experiment(nic::lanai43(), 16, 100);
    p.spec = spec(g.loc, g.alg, 2);
    const ExperimentResult r = run_barrier_experiment(p);
    EXPECT_EQ(r.total.ps(), g.total_ps) << g.what;
    // barriers_completed aggregates NIC firmware stats; host-driven
    // barriers never touch them.
    if (g.loc == Location::kNic) EXPECT_EQ(r.barriers_completed, 16u * 100u) << g.what;
  }
}

}  // namespace
}  // namespace nicbar::coll
