// Fuzzy barrier (§2.1): the host computes while the NIC runs the barrier.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using namespace sim::literals;
using coll::BarrierMember;

struct Rig {
  explicit Rig(std::size_t n) {
    host::ClusterParams cp;
    cp.nodes = n;
    cluster = std::make_unique<host::Cluster>(cp);
    for (std::size_t i = 0; i < n; ++i) {
      group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
      ports.push_back(cluster->open_port(static_cast<net::NodeId>(i), 2));
    }
    coll::BarrierSpec spec;
    spec.location = coll::Location::kNic;
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(std::make_unique<BarrierMember>(*ports[i], group, spec));
    }
  }
  std::unique_ptr<host::Cluster> cluster;
  std::vector<gm::Endpoint> group;
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<BarrierMember>> members;
};

TEST(FuzzyBarrierTest, StillSynchronizes) {
  Rig rig(8);
  std::vector<sim::SimTime> entered(8), exited(8);
  for (std::size_t i = 0; i < 8; ++i) {
    rig.cluster->sim().spawn([](sim::Simulator& sim, BarrierMember& m, sim::Duration d,
                                sim::SimTime* in, sim::SimTime* out) -> sim::Task {
      co_await sim.delay(d);
      *in = sim.now();
      (void)co_await m.run_fuzzy(5_us);
      *out = sim.now();
    }(rig.cluster->sim(), *rig.members[i], sim::microseconds(31.0 * static_cast<double>(i)),
      &entered[i], &exited[i]));
  }
  rig.cluster->sim().run();
  sim::SimTime last_in{0};
  for (auto t : entered) {
    if (t > last_in) last_in = t;
  }
  for (std::size_t i = 0; i < 8; ++i) EXPECT_GE(exited[i].ps(), last_in.ps()) << i;
}

TEST(FuzzyBarrierTest, SlowestNodeDoesNoIdleWork) {
  // A node entering last finds the barrier nearly done: few or no chunks.
  // The first node waits longest and overlaps the most work.
  Rig rig(4);
  std::vector<std::uint64_t> chunks(4, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    rig.cluster->sim().spawn([](sim::Simulator& sim, BarrierMember& m, sim::Duration d,
                                std::uint64_t* out) -> sim::Task {
      co_await sim.delay(d);
      *out = co_await m.run_fuzzy(5_us);
    }(rig.cluster->sim(), *rig.members[i],
      sim::microseconds(i == 3 ? 500.0 : 0.0), &chunks[i]));
  }
  rig.cluster->sim().run();
  EXPECT_GT(chunks[0], chunks[3]);
  EXPECT_GT(chunks[0], 50u);  // ~500us of waiting at 5us chunks
}

TEST(FuzzyBarrierTest, WorkScalesWithChunkCount) {
  // Total overlapped time ~= barrier latency regardless of chunk size.
  auto overlapped_us = [](sim::Duration chunk) {
    Rig rig(8);
    std::vector<std::uint64_t> chunks(8, 0);
    for (std::size_t i = 0; i < 8; ++i) {
      rig.cluster->sim().spawn([](BarrierMember& m, sim::Duration c,
                                  std::uint64_t* out) -> sim::Task {
        *out = co_await m.run_fuzzy(c);
      }(*rig.members[i], chunk, &chunks[i]));
    }
    rig.cluster->sim().run();
    return static_cast<double>(chunks[0]) * chunk.us();
  };
  const double fine = overlapped_us(2_us);
  const double coarse = overlapped_us(20_us);
  EXPECT_GT(fine, 20.0);
  EXPECT_NEAR(fine, coarse, 30.0);  // same wait budget, different granularity
}

TEST(FuzzyBarrierTest, RequiresNicLocation) {
  host::ClusterParams cp;
  cp.nodes = 2;
  host::Cluster cluster(cp);
  auto port = cluster.open_port(0, 2);
  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};
  coll::BarrierSpec spec;
  spec.location = coll::Location::kHost;
  BarrierMember m(*port, group, spec);
  EXPECT_THROW((void)m.run_fuzzy(5_us), std::logic_error);
}

TEST(FuzzyBarrierTest, RepeatedFuzzyBarriersAccumulateWork) {
  Rig rig(2);
  std::vector<std::uint64_t> total(2, 0);
  for (std::size_t i = 0; i < 2; ++i) {
    rig.cluster->sim().spawn([](BarrierMember& m, std::uint64_t* out) -> sim::Task {
      for (int k = 0; k < 5; ++k) {
        *out += co_await m.run_fuzzy(sim::microseconds(3.0));
      }
    }(*rig.members[i], &total[i]));
  }
  rig.cluster->sim().run();
  EXPECT_EQ(rig.cluster->nic(0).stats().barriers_completed, 5u);
  EXPECT_EQ(rig.cluster->nic(1).stats().barriers_completed, 5u);
}

}  // namespace
}  // namespace nicbar
