// Property tests for the barrier communication schedules.
#include "coll/schedule.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace nicbar::coll {
namespace {

std::vector<Endpoint> make_group(std::size_t n) {
  std::vector<Endpoint> g;
  for (std::size_t i = 0; i < n; ++i) {
    g.push_back(Endpoint{static_cast<net::NodeId>(i), 2});
  }
  return g;
}

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// --- Pairwise exchange ----------------------------------------------------------

TEST(PeScheduleTest, SingleMemberHasNoPeers) {
  EXPECT_TRUE(pe_schedule(make_group(1), 0).empty());
}

TEST(PeScheduleTest, TwoMembersExchangeOnce) {
  const auto g = make_group(2);
  const auto p0 = pe_schedule(g, 0);
  const auto p1 = pe_schedule(g, 1);
  ASSERT_EQ(p0.size(), 1u);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p0[0], g[1]);
  EXPECT_EQ(p1[0], g[0]);
}

TEST(PeScheduleTest, PowerOfTwoRoundsAreSymmetric) {
  // In round r, if a's r-th peer is b then b's r-th peer is a.
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    ASSERT_TRUE(is_pow2(n));
    std::size_t rounds = 0;
    for (std::size_t p = 1; p < n; p <<= 1) ++rounds;
    const auto g = make_group(n);
    std::vector<std::vector<Endpoint>> sched(n);
    for (std::size_t i = 0; i < n; ++i) sched[i] = pe_schedule(g, i);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(sched[i].size(), rounds) << "n=" << n << " i=" << i;
      for (std::size_t r = 0; r < sched[i].size(); ++r) {
        const std::size_t peer = sched[i][r].node;
        EXPECT_EQ(sched[peer][r], g[i]) << "n=" << n << " i=" << i << " r=" << r;
      }
    }
  }
}

TEST(PeScheduleTest, NoSelfExchange) {
  for (std::size_t n = 2; n <= 40; ++n) {
    const auto g = make_group(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (const Endpoint& p : pe_schedule(g, i)) {
        EXPECT_NE(p, g[i]) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(PeScheduleTest, NonPow2ExtrasExchangeTwiceWithPartner) {
  for (std::size_t n : {3u, 5u, 6u, 7u, 9u, 12u, 13u}) {
    const auto g = make_group(n);
    std::size_t p2 = 1;
    while (p2 * 2 <= n) p2 *= 2;
    for (std::size_t e = p2; e < n; ++e) {
      const auto peers = pe_schedule(g, e);
      ASSERT_EQ(peers.size(), 2u) << "n=" << n << " extra=" << e;
      EXPECT_EQ(peers[0], peers[1]);
      EXPECT_EQ(peers[0], g[e - p2]);
    }
  }
}

TEST(PeScheduleTest, NonPow2PartnersBracketTheirRounds) {
  // A partner of an extra talks to the extra first and last.
  for (std::size_t n : {3u, 5u, 6u, 7u, 11u}) {
    const auto g = make_group(n);
    std::size_t p2 = 1;
    while (p2 * 2 <= n) p2 *= 2;
    const std::size_t extras = n - p2;
    for (std::size_t a = 0; a < extras; ++a) {
      const auto peers = pe_schedule(g, a);
      ASSERT_GE(peers.size(), 2u);
      EXPECT_EQ(peers.front(), g[a + p2]) << "n=" << n << " a=" << a;
      EXPECT_EQ(peers.back(), g[a + p2]) << "n=" << n << " a=" << a;
    }
  }
}

TEST(PeScheduleTest, MessageCountConservation) {
  // Every schedule entry at x naming y is matched by one at y naming x.
  for (std::size_t n = 2; n <= 33; ++n) {
    const auto g = make_group(n);
    std::map<std::pair<std::size_t, std::size_t>, int> pair_count;
    for (std::size_t i = 0; i < n; ++i) {
      for (const Endpoint& p : pe_schedule(g, i)) {
        const std::size_t j = p.node;
        pair_count[{std::min(i, j), std::max(i, j)}] += 1;
      }
    }
    for (const auto& [pair, count] : pair_count) {
      EXPECT_EQ(count % 2, 0) << "n=" << n << " pair " << pair.first << "," << pair.second;
    }
  }
}

TEST(PeScheduleTest, RoundCountMatchesHelper) {
  for (std::size_t n = 1; n <= 33; ++n) {
    const auto g = make_group(n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(pe_schedule(g, i).size(), pe_round_count(n, i)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(PeScheduleTest, RejectsBadArguments) {
  EXPECT_THROW(pe_schedule({}, 0), std::invalid_argument);
  EXPECT_THROW(pe_schedule(make_group(4), 4), std::invalid_argument);
}

// --- Gather-broadcast tree -----------------------------------------------------------

TEST(GbTreeTest, RootHasNoParent) {
  const auto g = make_group(8);
  EXPECT_TRUE(gb_tree(g, 0, 2).is_root());
  EXPECT_FALSE(gb_tree(g, 1, 2).is_root());
}

TEST(GbTreeTest, ParentChildConsistency) {
  for (std::size_t n : {2u, 5u, 8u, 16u, 31u}) {
    const auto g = make_group(n);
    for (std::size_t dim = 1; dim < n; ++dim) {
      for (std::size_t i = 0; i < n; ++i) {
        const GbTreeSlice s = gb_tree(g, i, dim);
        for (const Endpoint& c : s.children) {
          const GbTreeSlice cs = gb_tree(g, c.node, dim);
          EXPECT_EQ(cs.parent, g[i]) << "n=" << n << " dim=" << dim << " i=" << i;
        }
        if (!s.is_root()) {
          const GbTreeSlice ps = gb_tree(g, s.parent.node, dim);
          bool found = false;
          for (const Endpoint& c : ps.children) {
            if (c == g[i]) found = true;
          }
          EXPECT_TRUE(found) << "n=" << n << " dim=" << dim << " i=" << i;
        }
      }
    }
  }
}

TEST(GbTreeTest, EveryMemberReachableFromRoot) {
  for (std::size_t n : {2u, 7u, 16u, 40u}) {
    const auto g = make_group(n);
    for (std::size_t dim = 1; dim < std::min<std::size_t>(n, 8); ++dim) {
      std::set<std::size_t> visited;
      std::vector<std::size_t> frontier{0};
      visited.insert(0);
      while (!frontier.empty()) {
        const std::size_t u = frontier.back();
        frontier.pop_back();
        for (const Endpoint& c : gb_tree(g, u, dim).children) {
          EXPECT_TRUE(visited.insert(c.node).second) << "cycle at " << c.node;
          frontier.push_back(c.node);
        }
      }
      EXPECT_EQ(visited.size(), n) << "n=" << n << " dim=" << dim;
    }
  }
}

TEST(GbTreeTest, FanoutBounded) {
  const auto g = make_group(30);
  for (std::size_t dim = 1; dim < 10; ++dim) {
    for (std::size_t i = 0; i < 30; ++i) {
      EXPECT_LE(gb_tree(g, i, dim).children.size(), dim);
    }
  }
}

TEST(GbTreeTest, DimensionOneIsAChain) {
  const auto g = make_group(5);
  for (std::size_t i = 0; i < 5; ++i) {
    const GbTreeSlice s = gb_tree(g, i, 1);
    if (i > 0) EXPECT_EQ(s.parent, g[i - 1]);
    if (i < 4) {
      ASSERT_EQ(s.children.size(), 1u);
      EXPECT_EQ(s.children[0], g[i + 1]);
    }
  }
  EXPECT_EQ(gb_tree_depth(5, 1), 4u);
}

TEST(GbTreeTest, FlatTreeIsDepthOne) {
  EXPECT_EQ(gb_tree_depth(16, 15), 1u);
  const auto g = make_group(16);
  EXPECT_EQ(gb_tree(g, 0, 15).children.size(), 15u);
}

TEST(GbTreeTest, DepthMatchesBinaryHeap) {
  EXPECT_EQ(gb_tree_depth(1, 2), 0u);
  EXPECT_EQ(gb_tree_depth(2, 2), 1u);
  EXPECT_EQ(gb_tree_depth(3, 2), 1u);
  EXPECT_EQ(gb_tree_depth(4, 2), 2u);
  EXPECT_EQ(gb_tree_depth(7, 2), 2u);
  EXPECT_EQ(gb_tree_depth(8, 2), 3u);
  EXPECT_EQ(gb_tree_depth(16, 2), 4u);
}

TEST(GbTreeTest, RejectsBadArguments) {
  EXPECT_THROW(gb_tree({}, 0, 2), std::invalid_argument);
  EXPECT_THROW(gb_tree(make_group(4), 9, 2), std::invalid_argument);
  EXPECT_THROW(gb_tree(make_group(4), 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace nicbar::coll
