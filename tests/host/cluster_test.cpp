// Cluster assembly: topologies, node wiring, configuration plumbing.
#include "host/cluster.hpp"

#include <gtest/gtest.h>

namespace nicbar::host {
namespace {

TEST(ClusterTest, SingleSwitchDefaults) {
  ClusterParams p;
  p.nodes = 8;
  Cluster c(p);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.network().terminal_count(), 8u);
  EXPECT_EQ(c.network().switch_count(), 1u);
}

TEST(ClusterTest, NicConfigIsPropagated) {
  ClusterParams p;
  p.nodes = 2;
  p.nic = nic::lanai72();
  Cluster c(p);
  EXPECT_EQ(c.nic(0).config().model, "LANai-7.2");
  EXPECT_DOUBLE_EQ(c.nic(1).config().clock_mhz, 66.0);
}

TEST(ClusterTest, NodeIdsMatchTerminals) {
  ClusterParams p;
  p.nodes = 4;
  Cluster c(p);
  for (net::NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(c.nic(i).node_id(), i);
  }
}

TEST(ClusterTest, SwitchChainTopology) {
  ClusterParams p;
  p.nodes = 12;
  p.topology = Topology::kSwitchChain;
  p.chain_per_switch = 4;
  Cluster c(p);
  EXPECT_EQ(c.network().switch_count(), 3u);
  EXPECT_EQ(c.network().hop_count(0, 11), 3u);
}

TEST(ClusterTest, SwitchTreeTopology) {
  ClusterParams p;
  p.nodes = 64;
  p.topology = Topology::kSwitchTree;
  p.tree_radix = 8;
  Cluster c(p);
  EXPECT_EQ(c.network().terminal_count(), 64u);
  EXPECT_GT(c.network().switch_count(), 8u);
}

TEST(ClusterTest, PortFactoryBindsToNode) {
  ClusterParams p;
  p.nodes = 3;
  Cluster c(p);
  auto port = c.open_port(2, 4);
  EXPECT_EQ(port->node(), 2);
  EXPECT_EQ(port->id(), 4);
  EXPECT_TRUE(c.nic(2).is_port_open(4));
}

TEST(ClusterTest, MakePortDoesNotOpen) {
  ClusterParams p;
  p.nodes = 2;
  Cluster c(p);
  auto port = c.make_port(0, 2);
  EXPECT_FALSE(port->is_open());
  EXPECT_FALSE(c.nic(0).is_port_open(2));
}

TEST(ClusterTest, GmConfigIsPropagated) {
  ClusterParams p;
  p.nodes = 2;
  p.gm.layer_overhead = sim::microseconds(9.0);
  Cluster c(p);
  auto port = c.open_port(0, 2);
  EXPECT_EQ(port->config().layer_overhead.ps(), sim::microseconds(9.0).ps());
}

TEST(ClusterTest, PciBusIsSharedPerNode) {
  ClusterParams p;
  p.nodes = 2;
  Cluster c(p);
  Node& n = c.node(0);
  // One PCI bus object per node, used by that node's NIC.
  EXPECT_EQ(n.pci.jobs(), 0u);
  n.pci.submit(sim::microseconds(1.0));
  EXPECT_EQ(n.pci.jobs(), 1u);
}

TEST(ClusterTest, HostCpuCountConfigurable) {
  ClusterParams p;
  p.nodes = 1;
  p.host_cpus = 4;
  Cluster c(p);
  EXPECT_EQ(c.node(0).host_cpu.capacity(), 4u);
}

}  // namespace
}  // namespace nicbar::host
