// Arm-time fault-plan validation: a plan naming a node or switch that the
// cluster does not have must fail loudly at Cluster construction — naming
// the offending plan line — instead of silently arming nothing (which would
// turn a typo'd node id into a fault-free run that "passes").
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "host/cluster.hpp"
#include "sim/fault.hpp"

namespace nicbar::host {
namespace {

ClusterParams four_nodes(sim::fault::FaultPlan plan) {
  ClusterParams p;
  p.nodes = 4;
  p.faults = std::move(plan);
  return p;
}

std::string construction_error(ClusterParams p) {
  try {
    Cluster cluster(std::move(p));
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(FaultPlanValidationTest, CrashOnMissingNodeThrowsNamingPlanLine) {
  const auto plan = sim::fault::parse_fault_plan("# comment\n"
                                                 "loss 0.01\n"
                                                 "nic-crash 99 100\n");
  const std::string err = construction_error(four_nodes(plan));
  EXPECT_NE(err.find("nic-crash node 99"), std::string::npos) << err;
  EXPECT_NE(err.find("cluster has 4 nodes"), std::string::npos) << err;
  EXPECT_NE(err.find("fault-plan line 3"), std::string::npos) << err;
}

TEST(FaultPlanValidationTest, SwitchPortDownOnMissingSwitchThrows) {
  const auto plan = sim::fault::parse_fault_plan("switch-port-down 7 0 100 200\n");
  const std::string err = construction_error(four_nodes(plan));
  EXPECT_NE(err.find("switch 7 does not exist"), std::string::npos) << err;
  EXPECT_NE(err.find("fault-plan line 1"), std::string::npos) << err;
}

TEST(FaultPlanValidationTest, ProgrammaticPlanOmitsLineSuffix) {
  sim::fault::FaultPlan plan;
  sim::fault::NicCrash c;
  c.node = 99;  // built in code: line stays 0
  plan.nic_crashes.push_back(c);
  const std::string err = construction_error(four_nodes(std::move(plan)));
  EXPECT_NE(err.find("nic-crash node 99"), std::string::npos) << err;
  EXPECT_EQ(err.find("fault-plan line"), std::string::npos) << err;
}

TEST(FaultPlanValidationTest, ValidPlanStillArms) {
  const auto plan = sim::fault::parse_fault_plan("nic-crash 3 100 -\n");
  Cluster cluster(four_nodes(plan));  // no throw
  EXPECT_EQ(cluster.size(), 4u);
}

}  // namespace
}  // namespace nicbar::host
