// fabric:: builders — shape resolution, input validation diagnostics, and
// the closed-form up/down routing contract: deterministic per-destination
// uplink spreading, byte-identical routes across repeated calls and across
// independently built networks, and independence from N (a partial fabric
// routes exactly like the full one for the nodes that exist).
#include "fabric/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace nicbar::fabric {
namespace {

using net::Network;
using net::NodeId;
using sim::Simulator;

/// Expects the builder to throw std::invalid_argument whose message
/// contains every fragment in `needles` (the diagnostic must name the
/// violated limit, not just say "bad input").
template <typename Builder>
void expect_rejects(Builder&& build, const std::vector<std::string>& needles) {
  Simulator sim;
  Network net(sim);
  try {
    build(net);
    FAIL() << "builder accepted invalid input";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const std::string& needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "diagnostic \"" << msg << "\" does not name \"" << needle << "\"";
    }
  }
}

TEST(FabricValidationTest, RejectsRadixBelowThree) {
  for (const std::size_t radix : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    expect_rejects([&](Network& n) { build_fat_tree(n, 4, radix); }, {"radix"});
    expect_rejects([&](Network& n) { build_leaf_spine(n, 4, radix); }, {"radix"});
  }
}

TEST(FabricValidationTest, RejectsZeroNodes) {
  expect_rejects([](Network& n) { build_fat_tree(n, 0, 8); }, {"node"});
  expect_rejects([](Network& n) { build_leaf_spine(n, 0, 8); }, {"node"});
}

TEST(FabricValidationTest, RejectsZeroOversubscription) {
  expect_rejects([](Network& n) { build_fat_tree(n, 4, 8, 0); }, {"oversub"});
  expect_rejects([](Network& n) { build_leaf_spine(n, 4, 8, 0); }, {"oversub"});
}

TEST(FabricValidationTest, RejectsNodesBeyondCapacityNamingTheLimit) {
  // radix 4, oversub 1: u = 2, h = 2. Fat-tree 3-level capacity = k*h^2 = 16;
  // leaf-spine capacity = k*h = 8. The diagnostic must name the number.
  expect_rejects([](Network& n) { build_fat_tree(n, 17, 4); }, {"caps at 16"});
  expect_rejects([](Network& n) { build_leaf_spine(n, 9, 4); }, {"caps at 8"});
}

TEST(FabricShapeTest, TwoLevelFatTreeWhileNodesFit) {
  Simulator sim;
  Network net(sim);
  // radix 8, oversub 1: u = 4, h = 4, 2-level capacity 32.
  const Fabric f = build_fat_tree(net, 32, 8);
  EXPECT_EQ(f.kind, Kind::kFatTree);
  EXPECT_EQ(f.levels, 2);
  EXPECT_EQ(f.hosts_per_leaf, 4u);
  EXPECT_EQ(f.uplinks_per_leaf, 4u);
  EXPECT_EQ(f.num_leaves, 8u);
  EXPECT_EQ(f.num_pods, 0u);
  EXPECT_EQ(net.terminal_count(), 32u);
}

TEST(FabricShapeTest, ThreeLevelFatTreeBeyondTwoLevelCapacity) {
  Simulator sim;
  Network net(sim);
  // radix 8, oversub 1: 2-level caps at 32, so 33+ nodes go 3-level
  // (capacity k*h^2 = 128).
  const Fabric f = build_fat_tree(net, 100, 8);
  EXPECT_EQ(f.levels, 3);
  EXPECT_EQ(f.hosts_per_leaf, 4u);
  EXPECT_EQ(f.leaves_per_pod, 4u);
  EXPECT_GT(f.num_pods, 0u);
  EXPECT_EQ(f.capacity, 128u);
  EXPECT_EQ(net.terminal_count(), 100u);
}

TEST(FabricShapeTest, LeafSpineIsAlwaysTwoLevels) {
  Simulator sim;
  Network net(sim);
  const Fabric f = build_leaf_spine(net, 24, 8);
  EXPECT_EQ(f.kind, Kind::kLeafSpine);
  EXPECT_EQ(f.levels, 2);
  EXPECT_EQ(f.capacity, 32u);
  // u spine switches + ceil(24/4) = 6 leaves.
  EXPECT_EQ(f.num_leaves, 6u);
}

TEST(FabricShapeTest, OversubscriptionShrinksUplinks) {
  Simulator sim;
  Network net(sim);
  // radix 18, oversub 8: u = max(1, 18/9) = 2, h = 16 — the bench fabric.
  const Fabric f = build_fat_tree(net, 64, 18, 8);
  EXPECT_EQ(f.uplinks_per_leaf, 2u);
  EXPECT_EQ(f.hosts_per_leaf, 16u);
}

TEST(FabricShapeTest, PartialLastLeafPopulation) {
  Simulator sim;
  Network net(sim);
  // radix 8, oversub 3: u = 2, h = 6. 100 nodes -> 17 leaves, last holds 4.
  const Fabric f = build_fat_tree(net, 100, 8, 3);
  EXPECT_EQ(f.hosts_per_leaf, 6u);
  EXPECT_EQ(f.num_leaves, 17u);
  EXPECT_EQ(f.leaf_population(0), 6u);
  EXPECT_EQ(f.leaf_population(16), 4u);
  EXPECT_EQ(f.leaf_of(99), 16u);
  EXPECT_EQ(f.leaf_first(16), NodeId{96});
}

TEST(FabricRouteTest, EmptyForSelfAndStableAcrossRepeatedCalls) {
  Simulator sim;
  Network net(sim);
  const Fabric f = build_fat_tree(net, 100, 8);
  EXPECT_TRUE(f.route(7, 7).empty());
  for (NodeId src = 0; src < 100; src += 13) {
    for (NodeId dst = 0; dst < 100; dst += 7) {
      EXPECT_EQ(f.route(src, dst), f.route(src, dst)) << src << "->" << dst;
    }
  }
}

TEST(FabricRouteTest, IdenticalAcrossIndependentBuilds) {
  // Two fabrics built in separate simulators must agree on every route —
  // the determinism the sweep relies on for worker-count independence.
  Simulator sim_a, sim_b;
  Network net_a(sim_a), net_b(sim_b);
  const Fabric a = build_fat_tree(net_a, 100, 8);
  const Fabric b = build_fat_tree(net_b, 100, 8);
  for (NodeId src = 0; src < 100; ++src) {
    for (NodeId dst = 0; dst < 100; dst += 3) {
      EXPECT_EQ(a.route(src, dst), b.route(src, dst)) << src << "->" << dst;
    }
  }
}

TEST(FabricRouteTest, RoutesDoNotDependOnNodeCount) {
  // A 100-node partial build and the full 128-node build route the common
  // terminals identically: uplink spreading is a function of (src, dst)
  // alone, never of how much of the fabric is populated.
  Simulator sim_a, sim_b;
  Network net_a(sim_a), net_b(sim_b);
  const Fabric partial = build_fat_tree(net_a, 100, 8);
  const Fabric full = build_fat_tree(net_b, 128, 8);
  for (NodeId src = 0; src < 100; src += 9) {
    for (NodeId dst = 0; dst < 100; ++dst) {
      EXPECT_EQ(partial.route(src, dst), full.route(src, dst)) << src << "->" << dst;
    }
  }
}

TEST(FabricRouteTest, PerDestinationUplinkSpreading) {
  Simulator sim;
  Network net(sim);
  // radix 8, oversub 1: h = 4, u = 4. All cross-leaf traffic to dst leaves
  // the source leaf on uplink port h + (dst mod u) — different destination
  // residues use different uplinks, and every source agrees per destination.
  const Fabric f = build_fat_tree(net, 32, 8);
  for (NodeId dst = 4; dst < 8; ++dst) {  // leaf 1, residues 0..3
    const std::uint8_t first_hop = f.route(0, dst).front();
    EXPECT_EQ(first_hop, static_cast<std::uint8_t>(f.hosts_per_leaf + dst % f.uplinks_per_leaf));
    // Any other source on another leaf picks the same uplink index.
    EXPECT_EQ(f.route(9, dst).front(), first_hop) << "dst " << dst;
  }
  // The four destinations on leaf 1 cover all four uplinks.
  std::vector<std::uint8_t> seen;
  for (NodeId dst = 4; dst < 8; ++dst) seen.push_back(f.route(0, dst).front());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(FabricRouteTest, HopCountsGrowWithDistance) {
  Simulator sim;
  Network net(sim);
  // 3-level fat-tree: same-leaf < same-pod < cross-pod route lengths.
  const Fabric f = build_fat_tree(net, 100, 8);
  ASSERT_EQ(f.levels, 3);
  const std::size_t same_leaf = f.route(0, 1).size();
  const std::size_t same_pod = f.route(0, f.hosts_per_leaf).size();
  const std::size_t cross_pod =
      f.route(0, static_cast<NodeId>(f.leaves_per_pod * f.hosts_per_leaf)).size();
  EXPECT_LT(same_leaf, same_pod);
  EXPECT_LT(same_pod, cross_pod);
}

TEST(FabricRouteTest, AllPairsDeliverableOnThreeLevelFatTree) {
  Simulator sim;
  Network net(sim);
  // radix 4, oversub 1: h = u = 2, 2-level caps at 8 so 16 nodes go
  // 3-level. Inject every ordered pair and expect exactly one delivery.
  build_fat_tree(net, 16, 4);
  const auto n = static_cast<NodeId>(net.terminal_count());
  std::vector<std::vector<int>> got(n, std::vector<int>(n, 0));
  for (NodeId t = 0; t < n; ++t) {
    net.set_deliver(t, [&, t](net::Packet p) { ++got[p.src_node][t]; });
  }
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      net::Packet p;
      p.src_node = a;
      p.dst_node = b;
      p.payload_bytes = 4;
      net.inject(std::move(p));
    }
  }
  sim.run();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      EXPECT_EQ(got[a][b], 1) << "pair " << a << "->" << b;
    }
  }
}

TEST(FabricRouteTest, AllPairsDeliverableOnLeafSpine) {
  Simulator sim;
  Network net(sim);
  const Fabric f = build_leaf_spine(net, 12, 6, 2);
  EXPECT_EQ(f.hosts_per_leaf, 4u);
  const auto n = static_cast<NodeId>(net.terminal_count());
  std::vector<std::vector<int>> got(n, std::vector<int>(n, 0));
  for (NodeId t = 0; t < n; ++t) {
    net.set_deliver(t, [&, t](net::Packet p) { ++got[p.src_node][t]; });
  }
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      net::Packet p;
      p.src_node = a;
      p.dst_node = b;
      p.payload_bytes = 4;
      net.inject(std::move(p));
    }
  }
  sim.run();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      EXPECT_EQ(got[a][b], 1) << "pair " << a << "->" << b;
    }
  }
}

}  // namespace
}  // namespace nicbar::fabric
