file(REMOVE_RECURSE
  "CMakeFiles/nicbar_gm.dir/port.cpp.o"
  "CMakeFiles/nicbar_gm.dir/port.cpp.o.d"
  "libnicbar_gm.a"
  "libnicbar_gm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicbar_gm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
