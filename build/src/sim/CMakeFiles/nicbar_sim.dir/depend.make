# Empty dependencies file for nicbar_sim.
# This may be replaced when dependencies are built.
