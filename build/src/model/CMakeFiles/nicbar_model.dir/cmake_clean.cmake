file(REMOVE_RECURSE
  "CMakeFiles/nicbar_model.dir/timing.cpp.o"
  "CMakeFiles/nicbar_model.dir/timing.cpp.o.d"
  "libnicbar_model.a"
  "libnicbar_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicbar_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
