# Empty compiler generated dependencies file for nicbar_model.
# This may be replaced when dependencies are built.
