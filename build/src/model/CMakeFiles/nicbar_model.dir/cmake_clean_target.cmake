file(REMOVE_RECURSE
  "libnicbar_model.a"
)
