file(REMOVE_RECURSE
  "CMakeFiles/nicbar_nic.dir/config.cpp.o"
  "CMakeFiles/nicbar_nic.dir/config.cpp.o.d"
  "CMakeFiles/nicbar_nic.dir/nic.cpp.o"
  "CMakeFiles/nicbar_nic.dir/nic.cpp.o.d"
  "CMakeFiles/nicbar_nic.dir/nic_barrier.cpp.o"
  "CMakeFiles/nicbar_nic.dir/nic_barrier.cpp.o.d"
  "CMakeFiles/nicbar_nic.dir/nic_reduce.cpp.o"
  "CMakeFiles/nicbar_nic.dir/nic_reduce.cpp.o.d"
  "libnicbar_nic.a"
  "libnicbar_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicbar_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
