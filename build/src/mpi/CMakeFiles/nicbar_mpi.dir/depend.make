# Empty dependencies file for nicbar_mpi.
# This may be replaced when dependencies are built.
