file(REMOVE_RECURSE
  "CMakeFiles/nicbar_host.dir/cluster.cpp.o"
  "CMakeFiles/nicbar_host.dir/cluster.cpp.o.d"
  "libnicbar_host.a"
  "libnicbar_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicbar_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
