file(REMOVE_RECURSE
  "libnicbar_host.a"
)
