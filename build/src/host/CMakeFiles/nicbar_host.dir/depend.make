# Empty dependencies file for nicbar_host.
# This may be replaced when dependencies are built.
