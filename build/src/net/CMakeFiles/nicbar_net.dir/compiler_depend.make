# Empty compiler generated dependencies file for nicbar_net.
# This may be replaced when dependencies are built.
