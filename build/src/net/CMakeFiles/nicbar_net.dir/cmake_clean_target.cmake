file(REMOVE_RECURSE
  "libnicbar_net.a"
)
