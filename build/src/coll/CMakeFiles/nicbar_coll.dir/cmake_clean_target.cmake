file(REMOVE_RECURSE
  "libnicbar_coll.a"
)
