file(REMOVE_RECURSE
  "CMakeFiles/nicbar_coll.dir/barrier.cpp.o"
  "CMakeFiles/nicbar_coll.dir/barrier.cpp.o.d"
  "CMakeFiles/nicbar_coll.dir/reduce.cpp.o"
  "CMakeFiles/nicbar_coll.dir/reduce.cpp.o.d"
  "CMakeFiles/nicbar_coll.dir/runner.cpp.o"
  "CMakeFiles/nicbar_coll.dir/runner.cpp.o.d"
  "CMakeFiles/nicbar_coll.dir/schedule.cpp.o"
  "CMakeFiles/nicbar_coll.dir/schedule.cpp.o.d"
  "libnicbar_coll.a"
  "libnicbar_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicbar_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
