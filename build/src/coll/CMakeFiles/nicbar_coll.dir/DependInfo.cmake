
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/barrier.cpp" "src/coll/CMakeFiles/nicbar_coll.dir/barrier.cpp.o" "gcc" "src/coll/CMakeFiles/nicbar_coll.dir/barrier.cpp.o.d"
  "/root/repo/src/coll/reduce.cpp" "src/coll/CMakeFiles/nicbar_coll.dir/reduce.cpp.o" "gcc" "src/coll/CMakeFiles/nicbar_coll.dir/reduce.cpp.o.d"
  "/root/repo/src/coll/runner.cpp" "src/coll/CMakeFiles/nicbar_coll.dir/runner.cpp.o" "gcc" "src/coll/CMakeFiles/nicbar_coll.dir/runner.cpp.o.d"
  "/root/repo/src/coll/schedule.cpp" "src/coll/CMakeFiles/nicbar_coll.dir/schedule.cpp.o" "gcc" "src/coll/CMakeFiles/nicbar_coll.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/nicbar_host.dir/DependInfo.cmake"
  "/root/repo/build/src/gm/CMakeFiles/nicbar_gm.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/nicbar_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nicbar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nicbar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
