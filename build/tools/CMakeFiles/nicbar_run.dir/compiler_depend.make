# Empty compiler generated dependencies file for nicbar_run.
# This may be replaced when dependencies are built.
