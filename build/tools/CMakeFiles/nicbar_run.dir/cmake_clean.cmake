file(REMOVE_RECURSE
  "CMakeFiles/nicbar_run.dir/nicbar_run.cpp.o"
  "CMakeFiles/nicbar_run.dir/nicbar_run.cpp.o.d"
  "nicbar_run"
  "nicbar_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicbar_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
