# Empty dependencies file for bsp_stencil.
# This may be replaced when dependencies are built.
