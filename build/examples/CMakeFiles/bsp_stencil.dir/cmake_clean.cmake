file(REMOVE_RECURSE
  "CMakeFiles/bsp_stencil.dir/bsp_stencil.cpp.o"
  "CMakeFiles/bsp_stencil.dir/bsp_stencil.cpp.o.d"
  "bsp_stencil"
  "bsp_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsp_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
