# Empty compiler generated dependencies file for subgroup_barriers.
# This may be replaced when dependencies are built.
