file(REMOVE_RECURSE
  "CMakeFiles/subgroup_barriers.dir/subgroup_barriers.cpp.o"
  "CMakeFiles/subgroup_barriers.dir/subgroup_barriers.cpp.o.d"
  "subgroup_barriers"
  "subgroup_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgroup_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
