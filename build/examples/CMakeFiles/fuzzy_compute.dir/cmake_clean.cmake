file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_compute.dir/fuzzy_compute.cpp.o"
  "CMakeFiles/fuzzy_compute.dir/fuzzy_compute.cpp.o.d"
  "fuzzy_compute"
  "fuzzy_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
