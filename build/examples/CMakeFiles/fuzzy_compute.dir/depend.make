# Empty dependencies file for fuzzy_compute.
# This may be replaced when dependencies are built.
