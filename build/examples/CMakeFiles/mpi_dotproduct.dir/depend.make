# Empty dependencies file for mpi_dotproduct.
# This may be replaced when dependencies are built.
