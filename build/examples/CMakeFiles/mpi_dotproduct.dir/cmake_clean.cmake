file(REMOVE_RECURSE
  "CMakeFiles/mpi_dotproduct.dir/mpi_dotproduct.cpp.o"
  "CMakeFiles/mpi_dotproduct.dir/mpi_dotproduct.cpp.o.d"
  "mpi_dotproduct"
  "mpi_dotproduct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_dotproduct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
