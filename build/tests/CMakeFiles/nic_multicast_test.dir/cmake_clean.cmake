file(REMOVE_RECURSE
  "CMakeFiles/nic_multicast_test.dir/nic/multicast_test.cpp.o"
  "CMakeFiles/nic_multicast_test.dir/nic/multicast_test.cpp.o.d"
  "nic_multicast_test"
  "nic_multicast_test.pdb"
  "nic_multicast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_multicast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
