# Empty dependencies file for nic_multicast_test.
# This may be replaced when dependencies are built.
