# Empty compiler generated dependencies file for nic_barrier_firmware_test.
# This may be replaced when dependencies are built.
