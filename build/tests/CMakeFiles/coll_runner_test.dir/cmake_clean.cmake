file(REMOVE_RECURSE
  "CMakeFiles/coll_runner_test.dir/coll/runner_test.cpp.o"
  "CMakeFiles/coll_runner_test.dir/coll/runner_test.cpp.o.d"
  "coll_runner_test"
  "coll_runner_test.pdb"
  "coll_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
