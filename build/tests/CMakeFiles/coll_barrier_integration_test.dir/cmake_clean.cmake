file(REMOVE_RECURSE
  "CMakeFiles/coll_barrier_integration_test.dir/coll/barrier_integration_test.cpp.o"
  "CMakeFiles/coll_barrier_integration_test.dir/coll/barrier_integration_test.cpp.o.d"
  "coll_barrier_integration_test"
  "coll_barrier_integration_test.pdb"
  "coll_barrier_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll_barrier_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
