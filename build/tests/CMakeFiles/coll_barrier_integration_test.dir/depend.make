# Empty dependencies file for coll_barrier_integration_test.
# This may be replaced when dependencies are built.
