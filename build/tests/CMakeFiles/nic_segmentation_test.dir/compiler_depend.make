# Empty compiler generated dependencies file for nic_segmentation_test.
# This may be replaced when dependencies are built.
