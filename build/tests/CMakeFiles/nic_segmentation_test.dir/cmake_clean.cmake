file(REMOVE_RECURSE
  "CMakeFiles/nic_segmentation_test.dir/nic/segmentation_test.cpp.o"
  "CMakeFiles/nic_segmentation_test.dir/nic/segmentation_test.cpp.o.d"
  "nic_segmentation_test"
  "nic_segmentation_test.pdb"
  "nic_segmentation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_segmentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
