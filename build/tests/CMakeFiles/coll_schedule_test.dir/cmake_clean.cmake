file(REMOVE_RECURSE
  "CMakeFiles/coll_schedule_test.dir/coll/schedule_test.cpp.o"
  "CMakeFiles/coll_schedule_test.dir/coll/schedule_test.cpp.o.d"
  "coll_schedule_test"
  "coll_schedule_test.pdb"
  "coll_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
