# Empty dependencies file for coll_schedule_test.
# This may be replaced when dependencies are built.
