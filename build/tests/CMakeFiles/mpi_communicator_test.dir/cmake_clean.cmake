file(REMOVE_RECURSE
  "CMakeFiles/mpi_communicator_test.dir/mpi/communicator_test.cpp.o"
  "CMakeFiles/mpi_communicator_test.dir/mpi/communicator_test.cpp.o.d"
  "mpi_communicator_test"
  "mpi_communicator_test.pdb"
  "mpi_communicator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_communicator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
