file(REMOVE_RECURSE
  "CMakeFiles/nic_mcp_engine_test.dir/nic/mcp_engine_test.cpp.o"
  "CMakeFiles/nic_mcp_engine_test.dir/nic/mcp_engine_test.cpp.o.d"
  "nic_mcp_engine_test"
  "nic_mcp_engine_test.pdb"
  "nic_mcp_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_mcp_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
