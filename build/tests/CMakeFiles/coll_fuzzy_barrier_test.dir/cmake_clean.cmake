file(REMOVE_RECURSE
  "CMakeFiles/coll_fuzzy_barrier_test.dir/coll/fuzzy_barrier_test.cpp.o"
  "CMakeFiles/coll_fuzzy_barrier_test.dir/coll/fuzzy_barrier_test.cpp.o.d"
  "coll_fuzzy_barrier_test"
  "coll_fuzzy_barrier_test.pdb"
  "coll_fuzzy_barrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll_fuzzy_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
