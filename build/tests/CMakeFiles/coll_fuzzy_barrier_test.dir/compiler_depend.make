# Empty compiler generated dependencies file for coll_fuzzy_barrier_test.
# This may be replaced when dependencies are built.
