file(REMOVE_RECURSE
  "CMakeFiles/host_cluster_test.dir/host/cluster_test.cpp.o"
  "CMakeFiles/host_cluster_test.dir/host/cluster_test.cpp.o.d"
  "host_cluster_test"
  "host_cluster_test.pdb"
  "host_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
