file(REMOVE_RECURSE
  "CMakeFiles/sim_valuetask_test.dir/sim/valuetask_test.cpp.o"
  "CMakeFiles/sim_valuetask_test.dir/sim/valuetask_test.cpp.o.d"
  "sim_valuetask_test"
  "sim_valuetask_test.pdb"
  "sim_valuetask_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_valuetask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
