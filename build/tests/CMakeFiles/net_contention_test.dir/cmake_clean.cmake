file(REMOVE_RECURSE
  "CMakeFiles/net_contention_test.dir/net/contention_test.cpp.o"
  "CMakeFiles/net_contention_test.dir/net/contention_test.cpp.o.d"
  "net_contention_test"
  "net_contention_test.pdb"
  "net_contention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_contention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
