file(REMOVE_RECURSE
  "CMakeFiles/model_timing_test.dir/model/timing_test.cpp.o"
  "CMakeFiles/model_timing_test.dir/model/timing_test.cpp.o.d"
  "model_timing_test"
  "model_timing_test.pdb"
  "model_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
