# Empty dependencies file for nic_barrier_reliability_test.
# This may be replaced when dependencies are built.
