file(REMOVE_RECURSE
  "CMakeFiles/nic_barrier_reliability_test.dir/nic/barrier_reliability_test.cpp.o"
  "CMakeFiles/nic_barrier_reliability_test.dir/nic/barrier_reliability_test.cpp.o.d"
  "nic_barrier_reliability_test"
  "nic_barrier_reliability_test.pdb"
  "nic_barrier_reliability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_barrier_reliability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
