# Empty dependencies file for coll_reduce_test.
# This may be replaced when dependencies are built.
