file(REMOVE_RECURSE
  "CMakeFiles/coll_reduce_test.dir/coll/reduce_test.cpp.o"
  "CMakeFiles/coll_reduce_test.dir/coll/reduce_test.cpp.o.d"
  "coll_reduce_test"
  "coll_reduce_test.pdb"
  "coll_reduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll_reduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
