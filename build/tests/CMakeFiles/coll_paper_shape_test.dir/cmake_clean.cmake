file(REMOVE_RECURSE
  "CMakeFiles/coll_paper_shape_test.dir/coll/paper_shape_test.cpp.o"
  "CMakeFiles/coll_paper_shape_test.dir/coll/paper_shape_test.cpp.o.d"
  "coll_paper_shape_test"
  "coll_paper_shape_test.pdb"
  "coll_paper_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll_paper_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
