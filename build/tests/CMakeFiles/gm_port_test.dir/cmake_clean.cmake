file(REMOVE_RECURSE
  "CMakeFiles/gm_port_test.dir/gm/port_test.cpp.o"
  "CMakeFiles/gm_port_test.dir/gm/port_test.cpp.o.d"
  "gm_port_test"
  "gm_port_test.pdb"
  "gm_port_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_port_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
