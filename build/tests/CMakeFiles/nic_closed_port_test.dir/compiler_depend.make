# Empty compiler generated dependencies file for nic_closed_port_test.
# This may be replaced when dependencies are built.
