file(REMOVE_RECURSE
  "CMakeFiles/nic_closed_port_test.dir/nic/closed_port_test.cpp.o"
  "CMakeFiles/nic_closed_port_test.dir/nic/closed_port_test.cpp.o.d"
  "nic_closed_port_test"
  "nic_closed_port_test.pdb"
  "nic_closed_port_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_closed_port_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
