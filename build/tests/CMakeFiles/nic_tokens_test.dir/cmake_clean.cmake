file(REMOVE_RECURSE
  "CMakeFiles/nic_tokens_test.dir/nic/tokens_test.cpp.o"
  "CMakeFiles/nic_tokens_test.dir/nic/tokens_test.cpp.o.d"
  "nic_tokens_test"
  "nic_tokens_test.pdb"
  "nic_tokens_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_tokens_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
