file(REMOVE_RECURSE
  "CMakeFiles/nic_messaging_test.dir/nic/messaging_test.cpp.o"
  "CMakeFiles/nic_messaging_test.dir/nic/messaging_test.cpp.o.d"
  "nic_messaging_test"
  "nic_messaging_test.pdb"
  "nic_messaging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_messaging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
