file(REMOVE_RECURSE
  "CMakeFiles/nic_loopback_test.dir/nic/loopback_test.cpp.o"
  "CMakeFiles/nic_loopback_test.dir/nic/loopback_test.cpp.o.d"
  "nic_loopback_test"
  "nic_loopback_test.pdb"
  "nic_loopback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_loopback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
