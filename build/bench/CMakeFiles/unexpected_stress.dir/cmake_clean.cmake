file(REMOVE_RECURSE
  "CMakeFiles/unexpected_stress.dir/unexpected_stress.cpp.o"
  "CMakeFiles/unexpected_stress.dir/unexpected_stress.cpp.o.d"
  "unexpected_stress"
  "unexpected_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unexpected_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
