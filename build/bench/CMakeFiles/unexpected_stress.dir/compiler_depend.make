# Empty compiler generated dependencies file for unexpected_stress.
# This may be replaced when dependencies are built.
