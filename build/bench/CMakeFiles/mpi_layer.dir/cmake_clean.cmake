file(REMOVE_RECURSE
  "CMakeFiles/mpi_layer.dir/mpi_layer.cpp.o"
  "CMakeFiles/mpi_layer.dir/mpi_layer.cpp.o.d"
  "mpi_layer"
  "mpi_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
