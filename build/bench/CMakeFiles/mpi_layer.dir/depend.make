# Empty dependencies file for mpi_layer.
# This may be replaced when dependencies are built.
