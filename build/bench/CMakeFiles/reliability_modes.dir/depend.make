# Empty dependencies file for reliability_modes.
# This may be replaced when dependencies are built.
