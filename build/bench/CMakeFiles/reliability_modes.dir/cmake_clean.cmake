file(REMOVE_RECURSE
  "CMakeFiles/reliability_modes.dir/reliability_modes.cpp.o"
  "CMakeFiles/reliability_modes.dir/reliability_modes.cpp.o.d"
  "reliability_modes"
  "reliability_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
