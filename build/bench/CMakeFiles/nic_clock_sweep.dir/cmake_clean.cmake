file(REMOVE_RECURSE
  "CMakeFiles/nic_clock_sweep.dir/nic_clock_sweep.cpp.o"
  "CMakeFiles/nic_clock_sweep.dir/nic_clock_sweep.cpp.o.d"
  "nic_clock_sweep"
  "nic_clock_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_clock_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
