# Empty compiler generated dependencies file for nic_clock_sweep.
# This may be replaced when dependencies are built.
