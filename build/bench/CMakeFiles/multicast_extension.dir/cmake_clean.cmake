file(REMOVE_RECURSE
  "CMakeFiles/multicast_extension.dir/multicast_extension.cpp.o"
  "CMakeFiles/multicast_extension.dir/multicast_extension.cpp.o.d"
  "multicast_extension"
  "multicast_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
