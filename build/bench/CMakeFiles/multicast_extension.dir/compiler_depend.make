# Empty compiler generated dependencies file for multicast_extension.
# This may be replaced when dependencies are built.
