file(REMOVE_RECURSE
  "CMakeFiles/topology_sweep.dir/topology_sweep.cpp.o"
  "CMakeFiles/topology_sweep.dir/topology_sweep.cpp.o.d"
  "topology_sweep"
  "topology_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
