
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/topology_sweep.cpp" "bench/CMakeFiles/topology_sweep.dir/topology_sweep.cpp.o" "gcc" "bench/CMakeFiles/topology_sweep.dir/topology_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coll/CMakeFiles/nicbar_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/nicbar_model.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/nicbar_host.dir/DependInfo.cmake"
  "/root/repo/build/src/gm/CMakeFiles/nicbar_gm.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/nicbar_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nicbar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nicbar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
