# Empty dependencies file for topology_sweep.
# This may be replaced when dependencies are built.
