# Empty compiler generated dependencies file for fig5b_lanai43_improvement.
# This may be replaced when dependencies are built.
