file(REMOVE_RECURSE
  "CMakeFiles/fig5b_lanai43_improvement.dir/fig5b_lanai43_improvement.cpp.o"
  "CMakeFiles/fig5b_lanai43_improvement.dir/fig5b_lanai43_improvement.cpp.o.d"
  "fig5b_lanai43_improvement"
  "fig5b_lanai43_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_lanai43_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
