# Empty compiler generated dependencies file for fig2_timing_model.
# This may be replaced when dependencies are built.
