# Empty compiler generated dependencies file for engine_microbench.
# This may be replaced when dependencies are built.
