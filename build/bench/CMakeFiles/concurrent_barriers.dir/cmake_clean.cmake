file(REMOVE_RECURSE
  "CMakeFiles/concurrent_barriers.dir/concurrent_barriers.cpp.o"
  "CMakeFiles/concurrent_barriers.dir/concurrent_barriers.cpp.o.d"
  "concurrent_barriers"
  "concurrent_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
