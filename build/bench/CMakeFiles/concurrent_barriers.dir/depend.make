# Empty dependencies file for concurrent_barriers.
# This may be replaced when dependencies are built.
