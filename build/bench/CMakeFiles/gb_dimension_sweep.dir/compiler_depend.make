# Empty compiler generated dependencies file for gb_dimension_sweep.
# This may be replaced when dependencies are built.
