file(REMOVE_RECURSE
  "CMakeFiles/gb_dimension_sweep.dir/gb_dimension_sweep.cpp.o"
  "CMakeFiles/gb_dimension_sweep.dir/gb_dimension_sweep.cpp.o.d"
  "gb_dimension_sweep"
  "gb_dimension_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_dimension_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
