# Empty dependencies file for allreduce_extension.
# This may be replaced when dependencies are built.
