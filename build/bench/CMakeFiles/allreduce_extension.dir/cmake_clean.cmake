file(REMOVE_RECURSE
  "CMakeFiles/allreduce_extension.dir/allreduce_extension.cpp.o"
  "CMakeFiles/allreduce_extension.dir/allreduce_extension.cpp.o.d"
  "allreduce_extension"
  "allreduce_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
