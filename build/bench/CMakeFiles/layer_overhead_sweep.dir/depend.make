# Empty dependencies file for layer_overhead_sweep.
# This may be replaced when dependencies are built.
