file(REMOVE_RECURSE
  "CMakeFiles/layer_overhead_sweep.dir/layer_overhead_sweep.cpp.o"
  "CMakeFiles/layer_overhead_sweep.dir/layer_overhead_sweep.cpp.o.d"
  "layer_overhead_sweep"
  "layer_overhead_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_overhead_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
