file(REMOVE_RECURSE
  "CMakeFiles/fig5c_lanai72_latency.dir/fig5c_lanai72_latency.cpp.o"
  "CMakeFiles/fig5c_lanai72_latency.dir/fig5c_lanai72_latency.cpp.o.d"
  "fig5c_lanai72_latency"
  "fig5c_lanai72_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_lanai72_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
