# Empty dependencies file for fig5c_lanai72_latency.
# This may be replaced when dependencies are built.
