# Empty compiler generated dependencies file for fuzzy_barrier.
# This may be replaced when dependencies are built.
