file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_barrier.dir/fuzzy_barrier.cpp.o"
  "CMakeFiles/fuzzy_barrier.dir/fuzzy_barrier.cpp.o.d"
  "fuzzy_barrier"
  "fuzzy_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
