file(REMOVE_RECURSE
  "CMakeFiles/fig5a_lanai43_latency.dir/fig5a_lanai43_latency.cpp.o"
  "CMakeFiles/fig5a_lanai43_latency.dir/fig5a_lanai43_latency.cpp.o.d"
  "fig5a_lanai43_latency"
  "fig5a_lanai43_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_lanai43_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
