# Empty dependencies file for fig5a_lanai43_latency.
# This may be replaced when dependencies are built.
