# Empty dependencies file for fig5d_lanai72_improvement.
# This may be replaced when dependencies are built.
