file(REMOVE_RECURSE
  "CMakeFiles/fig5d_lanai72_improvement.dir/fig5d_lanai72_improvement.cpp.o"
  "CMakeFiles/fig5d_lanai72_improvement.dir/fig5d_lanai72_improvement.cpp.o.d"
  "fig5d_lanai72_improvement"
  "fig5d_lanai72_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5d_lanai72_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
